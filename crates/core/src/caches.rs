//! The two node caches of §4: function snapshots and idle UCs.
//!
//! Both are LRU. The snapshot cache evicts only images the §6 policy
//! allows deleting (no active UCs); the idle-UC cache is additionally
//! drained by the OOM daemon under memory pressure.

use std::collections::HashMap;

use seuss_mem::PhysMemory;
use seuss_paging::Mmu;
use seuss_snapshot::SnapshotStore;
use seuss_unikernel::{ImageStore, UcContext, UcImageId};

use crate::node::FnId;

/// LRU cache of function-specific UC images, keyed by function identity.
pub struct FnImageCache {
    entries: HashMap<FnId, (UcImageId, u64)>,
    capacity: usize,
    clock: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
}

impl FnImageCache {
    /// Creates a cache holding at most `capacity` function images.
    pub fn new(capacity: usize) -> Self {
        FnImageCache {
            entries: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Non-mutating lookup (no recency refresh, no stats).
    pub fn peek(&self, f: FnId) -> Option<UcImageId> {
        self.entries.get(&f).map(|(img, _)| *img)
    }

    /// Looks up the image for a function, refreshing recency.
    pub fn lookup(&mut self, f: FnId) -> Option<UcImageId> {
        self.clock += 1;
        match self.entries.get_mut(&f) {
            Some((img, t)) => {
                *t = self.clock;
                self.hits += 1;
                Some(*img)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a function image, evicting LRU deletable images as needed.
    pub fn insert(
        &mut self,
        mmu: &mut Mmu,
        mem: &mut PhysMemory,
        snaps: &mut SnapshotStore,
        images: &mut ImageStore,
        f: FnId,
        img: UcImageId,
    ) {
        self.clock += 1;
        while self.entries.len() >= self.capacity {
            if !self.evict_one(mmu, mem, snaps, images) {
                break;
            }
        }
        if let Some((old, _)) = self.entries.insert(f, (img, self.clock)) {
            let _ = images.delete(mmu, mem, snaps, old);
        }
    }

    /// Evicts the least-recently-used deletable image (used directly by
    /// the OOM daemon under memory pressure). Returns whether anything
    /// was evicted.
    pub fn evict_lru(
        &mut self,
        mmu: &mut Mmu,
        mem: &mut PhysMemory,
        snaps: &mut SnapshotStore,
        images: &mut ImageStore,
    ) -> bool {
        self.evict_one(mmu, mem, snaps, images)
    }

    fn evict_one(
        &mut self,
        mmu: &mut Mmu,
        mem: &mut PhysMemory,
        snaps: &mut SnapshotStore,
        images: &mut ImageStore,
    ) -> bool {
        let mut candidates: Vec<(FnId, u64, UcImageId)> = self
            .entries
            .iter()
            .filter(|(_, (img, _))| {
                images
                    .snapshot_of(*img)
                    .ok()
                    .and_then(|s| snaps.get(s).ok())
                    .map(|s| s.active_ucs() == 0)
                    .unwrap_or(true)
            })
            .map(|(f, (img, t))| (*f, *t, *img))
            .collect();
        candidates.sort_by_key(|&(_, t, _)| t);
        let Some(&(f, _, img)) = candidates.first() else {
            return false;
        };
        self.entries.remove(&f);
        self.evictions += 1;
        let _ = images.delete(mmu, mem, snaps, img);
        true
    }

    /// Removes and returns a specific entry without deleting its image.
    pub fn remove(&mut self, f: FnId) -> Option<UcImageId> {
        self.entries.remove(&f).map(|(img, _)| img)
    }
}

/// Cache of idle ("hot") UCs, per function, with global and per-function
/// caps and LRU reclaim for the OOM daemon.
pub struct IdleUcCache {
    by_fn: HashMap<FnId, Vec<(UcContext, u64)>>,
    per_fn: usize,
    total_cap: usize,
    total: usize,
    clock: u64,
    /// Hot hits served.
    pub hits: u64,
    /// UCs reclaimed (by pressure or capacity).
    pub reclaimed: u64,
}

impl IdleUcCache {
    /// Creates a cache with per-function and global caps.
    pub fn new(per_fn: usize, total_cap: usize) -> Self {
        IdleUcCache {
            by_fn: HashMap::new(),
            per_fn,
            total_cap,
            total: 0,
            clock: 0,
            hits: 0,
            reclaimed: 0,
        }
    }

    /// Total idle UCs cached.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether any idle UC is cached.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Idle UCs cached for one function.
    pub fn count_for(&self, f: FnId) -> usize {
        self.by_fn.get(&f).map(|v| v.len()).unwrap_or(0)
    }

    /// Takes an idle UC for `f` if one is cached (the hot path).
    pub fn take(&mut self, f: FnId) -> Option<UcContext> {
        let v = self.by_fn.get_mut(&f)?;
        let (uc, _) = v.pop()?;
        self.total -= 1;
        self.hits += 1;
        Some(uc)
    }

    /// Caches a finished UC for future hot invocations. Returns a UC that
    /// had to be displaced (capacity), which the caller must destroy.
    pub fn put(&mut self, f: FnId, uc: UcContext) -> Option<UcContext> {
        self.clock += 1;
        let v = self.by_fn.entry(f).or_default();
        v.push((uc, self.clock));
        self.total += 1;
        if v.len() > self.per_fn {
            self.total -= 1;
            self.reclaimed += 1;
            return Some(v.remove(0).0);
        }
        if self.total > self.total_cap {
            return self.pop_lru();
        }
        None
    }

    /// Removes the least-recently-cached idle UC (OOM-daemon reclaim).
    pub fn pop_lru(&mut self) -> Option<UcContext> {
        let f = self
            .by_fn
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .min_by_key(|(_, v)| v.first().map(|(_, t)| *t).unwrap_or(u64::MAX))
            .map(|(f, _)| *f)?;
        let v = self.by_fn.get_mut(&f)?;
        let (uc, _) = v.remove(0);
        self.total -= 1;
        self.reclaimed += 1;
        Some(uc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // UcContext cannot be fabricated without a full rig, so IdleUcCache
    // policy tests that need real UCs live in the node tests; here we
    // exercise the counters and FnImageCache bookkeeping that don't.

    #[test]
    fn fn_cache_lru_accounting() {
        let mut c = FnImageCache::new(8);
        assert_eq!(c.lookup(1), None);
        assert_eq!(c.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn idle_cache_counts() {
        let c = IdleUcCache::new(2, 10);
        assert_eq!(c.len(), 0);
        assert_eq!(c.count_for(3), 0);
        assert!(c.is_empty());
    }
}
