//! `seuss-core` — the SEUSS OS compute node.
//!
//! This crate assembles the mechanism crates into the system of §4/§6: a
//! multicore node that receives invocation requests and serves each over
//! one of three paths —
//!
//! * **cold**: deploy a UC from the base runtime snapshot, import and
//!   compile the function source, capture a function-specific snapshot,
//!   then run;
//! * **warm**: deploy a UC from the cached function snapshot and run;
//! * **hot**: reuse an idle, already-constructed UC.
//!
//! It owns the node-wide resources (frame pool, MMU, snapshot store,
//! image store), the two caches of §4 (function snapshots and idle UCs),
//! the trivial OOM daemon of §6 ("we reclaim idle UCs that do not
//! currently host a live invocation as soon as the available physical
//! memory drops below a pre-defined threshold"), the anticipatory
//! optimizations of §3/§7, and the Linux-side shim process model of §6.
//!
//! Everything here is synchronous mechanism + cost reporting; the
//! discrete-event scheduling (cores, queueing, blocking IO) lives in
//! `seuss-platform`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod caches;
pub mod config;
pub mod cost;
pub mod node;
pub mod shim;

pub use caches::{FnImageCache, IdleUcCache};
pub use config::{AoLevel, ConfigError, SeussConfig, SeussConfigBuilder};
pub use cost::CostModel;
pub use node::{FnId, Invocation, IoToken, NodeError, NodeStats, PathCosts, PathKind, SeussNode};
pub use shim::ShimProcess;

pub use seuss_trace::{Phase, Tracer};
pub use seuss_unikernel::RuntimeKind;
