//! Node configuration: the validated builder and its presets.
//!
//! [`SeussConfig`] is constructed through [`SeussConfig::builder`] (paper
//! defaults) or [`SeussConfig::test_builder`] (small test defaults).
//! [`SeussConfigBuilder::build`] rejects nonsensical combinations — zero
//! cores, zero memory, empty cache capacities — so a node can assume its
//! config is coherent.

use miniscript::RuntimeProfile;
use seuss_store::StoreConfig;
use seuss_unikernel::{Layout, RuntimeKind, UcProfile};
use simcore::SimDuration;

/// Which anticipatory optimizations to apply before capturing the base
/// runtime snapshot (the three columns of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AoLevel {
    /// Capture immediately after the driver starts listening.
    None,
    /// Send an HTTP request through the UC first (network AO).
    Network,
    /// Network AO plus importing and running a dummy function
    /// (interpreter AO).
    NetworkAndInterpreter,
}

/// Configuration of a SEUSS compute node. Build via
/// [`SeussConfig::builder`]; the fields stay public for reading.
#[derive(Clone, Debug)]
pub struct SeussConfig {
    /// Worker cores (the paper's VM has 16 VCPUs).
    pub cores: u16,
    /// Physical memory in MiB (the paper's VM has 88 GB).
    pub mem_mib: u64,
    /// AO level for the base runtime snapshots.
    pub ao: AoLevel,
    /// Runtimes to boot and snapshot (one base snapshot each, §4).
    /// `layout`/`uc_profile`/`runtime_profile` below configure the
    /// *primary* (first) runtime; additional runtimes use their
    /// [`RuntimeKind`] defaults.
    pub runtimes: Vec<RuntimeKind>,
    /// UC address-space layout of the primary runtime.
    pub layout: Layout,
    /// UC sizing profile of the primary runtime.
    pub uc_profile: UcProfile,
    /// Interpreter sizing profile of the primary runtime.
    pub runtime_profile: RuntimeProfile,
    /// Maximum idle UCs cached per function.
    pub idle_per_fn: usize,
    /// Maximum idle UCs cached in total.
    pub idle_total: usize,
    /// OOM-daemon reclaim threshold, in frames (None = 2% of capacity).
    pub reclaim_threshold_frames: Option<u64>,
    /// Host OS threads the sharded trial executor may use when replaying
    /// a trial against this node configuration. Purely an execution-speed
    /// knob: artifacts are byte-identical for every value (see
    /// `seuss-exec`). Must be at least 1.
    pub exec_workers: usize,
    /// Storage tier for demoted snapshots (`None` = all-DRAM node; the
    /// pre-tier behavior, byte-identical artifacts).
    pub store: Option<StoreConfig>,
}

/// A rejected [`SeussConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A node needs at least one worker core.
    ZeroCores,
    /// A node needs physical memory.
    ZeroMemory,
    /// At least one runtime must be configured.
    NoRuntimes,
    /// The same runtime was listed twice (one base snapshot each, §4).
    DuplicateRuntime(RuntimeKind),
    /// The idle-UC cache must admit at least one UC per function.
    ZeroIdlePerFn,
    /// The idle-UC cache must admit at least one UC in total.
    ZeroIdleTotal,
    /// Per-function capacity cannot exceed the total capacity.
    IdlePerFnExceedsTotal {
        /// Configured per-function capacity.
        per_fn: usize,
        /// Configured total capacity.
        total: usize,
    },
    /// An explicit reclaim threshold of zero frames disables the OOM
    /// daemon silently; use `None` for the default instead.
    ZeroReclaimThreshold,
    /// The trial executor needs at least one worker thread.
    ZeroExecWorkers,
    /// A storage tier was configured with a zero-block device.
    ZeroDeviceCapacity,
    /// A storage-tier device with zero bandwidth and zero latency would
    /// make demoted restores free, hiding the tier from every measured
    /// path; give the device a cost.
    FreeDevice,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "config: cores must be >= 1"),
            ConfigError::ZeroMemory => write!(f, "config: mem_mib must be >= 1"),
            ConfigError::NoRuntimes => write!(f, "config: at least one runtime required"),
            ConfigError::DuplicateRuntime(k) => {
                write!(f, "config: runtime {} listed twice", k.name())
            }
            ConfigError::ZeroIdlePerFn => write!(f, "config: idle_per_fn must be >= 1"),
            ConfigError::ZeroIdleTotal => write!(f, "config: idle_total must be >= 1"),
            ConfigError::IdlePerFnExceedsTotal { per_fn, total } => write!(
                f,
                "config: idle_per_fn ({per_fn}) exceeds idle_total ({total})"
            ),
            ConfigError::ZeroReclaimThreshold => {
                write!(
                    f,
                    "config: reclaim threshold of 0 frames; use None for default"
                )
            }
            ConfigError::ZeroExecWorkers => {
                write!(f, "config: exec_workers must be >= 1")
            }
            ConfigError::ZeroDeviceCapacity => {
                write!(f, "config: store device needs at least one block")
            }
            ConfigError::FreeDevice => {
                write!(f, "config: store device must cost something to read")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated builder for [`SeussConfig`].
#[derive(Clone, Debug)]
pub struct SeussConfigBuilder {
    cfg: SeussConfig,
}

impl SeussConfigBuilder {
    /// Worker cores.
    pub fn cores(mut self, cores: u16) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Physical memory in MiB.
    pub fn mem_mib(mut self, mem_mib: u64) -> Self {
        self.cfg.mem_mib = mem_mib;
        self
    }

    /// AO level for the base runtime snapshots.
    pub fn ao_level(mut self, ao: AoLevel) -> Self {
        self.cfg.ao = ao;
        self
    }

    /// Runtimes to boot and snapshot (the first is the primary).
    pub fn runtimes(mut self, runtimes: Vec<RuntimeKind>) -> Self {
        self.cfg.runtimes = runtimes;
        self
    }

    /// Address-space layout of the primary runtime.
    pub fn layout(mut self, layout: Layout) -> Self {
        self.cfg.layout = layout;
        self
    }

    /// UC sizing profile of the primary runtime.
    pub fn uc_profile(mut self, p: UcProfile) -> Self {
        self.cfg.uc_profile = p;
        self
    }

    /// Interpreter sizing profile of the primary runtime.
    pub fn runtime_profile(mut self, p: RuntimeProfile) -> Self {
        self.cfg.runtime_profile = p;
        self
    }

    /// Maximum idle UCs cached per function.
    pub fn idle_per_fn(mut self, n: usize) -> Self {
        self.cfg.idle_per_fn = n;
        self
    }

    /// Maximum idle UCs cached in total.
    pub fn idle_total(mut self, n: usize) -> Self {
        self.cfg.idle_total = n;
        self
    }

    /// OOM-daemon reclaim threshold in frames (`None` = 2% of capacity).
    pub fn reclaim_threshold_frames(mut self, t: Option<u64>) -> Self {
        self.cfg.reclaim_threshold_frames = t;
        self
    }

    /// Host threads for the sharded trial executor (default 1).
    pub fn exec_workers(mut self, n: usize) -> Self {
        self.cfg.exec_workers = n;
        self
    }

    /// Storage tier for demoted snapshots (`None` disables tiering).
    pub fn store(mut self, store: Option<StoreConfig>) -> Self {
        self.cfg.store = store;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<SeussConfig, ConfigError> {
        let c = self.cfg;
        if c.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if c.mem_mib == 0 {
            return Err(ConfigError::ZeroMemory);
        }
        if c.runtimes.is_empty() {
            return Err(ConfigError::NoRuntimes);
        }
        for (i, k) in c.runtimes.iter().enumerate() {
            if c.runtimes[..i].contains(k) {
                return Err(ConfigError::DuplicateRuntime(*k));
            }
        }
        if c.idle_per_fn == 0 {
            return Err(ConfigError::ZeroIdlePerFn);
        }
        if c.idle_total == 0 {
            return Err(ConfigError::ZeroIdleTotal);
        }
        if c.idle_per_fn > c.idle_total {
            return Err(ConfigError::IdlePerFnExceedsTotal {
                per_fn: c.idle_per_fn,
                total: c.idle_total,
            });
        }
        if c.reclaim_threshold_frames == Some(0) {
            return Err(ConfigError::ZeroReclaimThreshold);
        }
        if c.exec_workers == 0 {
            return Err(ConfigError::ZeroExecWorkers);
        }
        if let Some(store) = &c.store {
            if store.device.capacity_blocks == 0 {
                return Err(ConfigError::ZeroDeviceCapacity);
            }
            if store.device.read_latency == SimDuration::ZERO && store.device.nanos_per_kib == 0 {
                return Err(ConfigError::FreeDevice);
            }
        }
        Ok(c)
    }
}

impl SeussConfig {
    /// Builder seeded with the paper's evaluation node: 16 cores, 88 GB,
    /// full AO, Node.js.
    pub fn builder() -> SeussConfigBuilder {
        SeussConfigBuilder {
            cfg: SeussConfig {
                cores: 16,
                mem_mib: 88 * 1024,
                ao: AoLevel::NetworkAndInterpreter,
                runtimes: vec![RuntimeKind::NodeJs],
                layout: Layout::nodejs(),
                uc_profile: UcProfile::nodejs(),
                runtime_profile: RuntimeProfile::nodejs(),
                idle_per_fn: 4,
                idle_total: 4096,
                reclaim_threshold_frames: None,
                exec_workers: 1,
                store: None,
            },
        }
    }

    /// Builder seeded with a small fast node for unit tests.
    pub fn test_builder() -> SeussConfigBuilder {
        SeussConfig::builder()
            .cores(4)
            .mem_mib(768)
            .uc_profile(UcProfile::tiny())
            .runtime_profile(RuntimeProfile::tiny())
            .idle_per_fn(2)
            .idle_total(16)
    }

    /// Re-opens this config for modification.
    pub fn to_builder(&self) -> SeussConfigBuilder {
        SeussConfigBuilder { cfg: self.clone() }
    }

    /// The paper's evaluation node (see [`SeussConfig::builder`]).
    pub fn paper_node() -> Self {
        SeussConfig::builder()
            .build()
            .expect("paper preset is valid")
    }

    /// A small fast node for unit tests.
    pub fn test_node() -> Self {
        SeussConfig::test_builder()
            .build()
            .expect("test preset is valid")
    }

    /// The paper's boot-to-ready budget for the whole node (boot + AO +
    /// base capture); informational.
    pub fn expected_init_floor(&self) -> SimDuration {
        self.uc_profile.boot_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_matches_testbed() {
        let c = SeussConfig::paper_node();
        assert_eq!(c.cores, 16);
        assert_eq!(c.mem_mib, 88 * 1024);
        assert_eq!(c.ao, AoLevel::NetworkAndInterpreter);
        assert_eq!(c.runtimes, vec![RuntimeKind::NodeJs]);
    }

    #[test]
    fn init_floor_is_the_boot_time() {
        let c = SeussConfig::paper_node();
        assert_eq!(c.expected_init_floor(), c.uc_profile.boot_time);
    }

    #[test]
    fn test_node_is_small() {
        let c = SeussConfig::test_node();
        assert!(c.mem_mib < 1024);
        assert!(c.uc_profile.boot_data_bytes < (1 << 20));
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            SeussConfig::builder().cores(0).build().unwrap_err(),
            ConfigError::ZeroCores
        );
        assert_eq!(
            SeussConfig::builder().mem_mib(0).build().unwrap_err(),
            ConfigError::ZeroMemory
        );
        assert_eq!(
            SeussConfig::builder().runtimes(vec![]).build().unwrap_err(),
            ConfigError::NoRuntimes
        );
        assert_eq!(
            SeussConfig::builder()
                .runtimes(vec![RuntimeKind::NodeJs, RuntimeKind::NodeJs])
                .build()
                .unwrap_err(),
            ConfigError::DuplicateRuntime(RuntimeKind::NodeJs)
        );
        assert_eq!(
            SeussConfig::builder().idle_per_fn(0).build().unwrap_err(),
            ConfigError::ZeroIdlePerFn
        );
        assert_eq!(
            SeussConfig::builder().idle_total(0).build().unwrap_err(),
            ConfigError::ZeroIdleTotal
        );
        assert_eq!(
            SeussConfig::builder()
                .idle_per_fn(10)
                .idle_total(5)
                .build()
                .unwrap_err(),
            ConfigError::IdlePerFnExceedsTotal {
                per_fn: 10,
                total: 5
            }
        );
        assert_eq!(
            SeussConfig::builder()
                .reclaim_threshold_frames(Some(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroReclaimThreshold
        );
        assert_eq!(
            SeussConfig::builder().exec_workers(0).build().unwrap_err(),
            ConfigError::ZeroExecWorkers
        );
        let mut store = seuss_store::StoreConfig::nvme_prefetch();
        store.device.capacity_blocks = 0;
        assert_eq!(
            SeussConfig::builder()
                .store(Some(store))
                .build()
                .unwrap_err(),
            ConfigError::ZeroDeviceCapacity
        );
        let mut free = seuss_store::StoreConfig::nvme_prefetch();
        free.device.read_latency = SimDuration::ZERO;
        free.device.nanos_per_kib = 0;
        assert_eq!(
            SeussConfig::builder()
                .store(Some(free))
                .build()
                .unwrap_err(),
            ConfigError::FreeDevice
        );
    }

    #[test]
    fn store_defaults_off_and_round_trips() {
        assert!(SeussConfig::paper_node().store.is_none());
        let c = SeussConfig::test_builder()
            .store(Some(seuss_store::StoreConfig::nvme_prefetch()))
            .build()
            .unwrap();
        assert_eq!(c.store, Some(seuss_store::StoreConfig::nvme_prefetch()));
        let c2 = c.to_builder().build().unwrap();
        assert_eq!(c2.store, c.store);
    }

    #[test]
    fn exec_workers_defaults_to_one_and_is_settable() {
        assert_eq!(SeussConfig::paper_node().exec_workers, 1);
        let c = SeussConfig::test_builder().exec_workers(4).build().unwrap();
        assert_eq!(c.exec_workers, 4);
    }

    #[test]
    fn to_builder_round_trips() {
        let c = SeussConfig::test_node();
        let c2 = c.to_builder().mem_mib(2048).build().unwrap();
        assert_eq!(c2.mem_mib, 2048);
        assert_eq!(c2.cores, c.cores);
        assert_eq!(c2.idle_total, c.idle_total);
    }

    #[test]
    fn error_messages_render() {
        let e = ConfigError::IdlePerFnExceedsTotal {
            per_fn: 9,
            total: 3,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3"));
    }
}
