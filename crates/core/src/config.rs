//! Node configuration.

use miniscript::RuntimeProfile;
use seuss_unikernel::{Layout, RuntimeKind, UcProfile};
use simcore::SimDuration;

/// Which anticipatory optimizations to apply before capturing the base
/// runtime snapshot (the three columns of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AoLevel {
    /// Capture immediately after the driver starts listening.
    None,
    /// Send an HTTP request through the UC first (network AO).
    Network,
    /// Network AO plus importing and running a dummy function
    /// (interpreter AO).
    NetworkAndInterpreter,
}

/// Configuration of a SEUSS compute node.
#[derive(Clone, Debug)]
pub struct SeussConfig {
    /// Worker cores (the paper's VM has 16 VCPUs).
    pub cores: u16,
    /// Physical memory in MiB (the paper's VM has 88 GB).
    pub mem_mib: u64,
    /// AO level for the base runtime snapshots.
    pub ao: AoLevel,
    /// Runtimes to boot and snapshot (one base snapshot each, §4).
    /// `layout`/`uc_profile`/`runtime_profile` below configure the
    /// *primary* (first) runtime; additional runtimes use their
    /// [`RuntimeKind`] defaults.
    pub runtimes: Vec<RuntimeKind>,
    /// UC address-space layout of the primary runtime.
    pub layout: Layout,
    /// UC sizing profile of the primary runtime.
    pub uc_profile: UcProfile,
    /// Interpreter sizing profile of the primary runtime.
    pub runtime_profile: RuntimeProfile,
    /// Maximum idle UCs cached per function.
    pub idle_per_fn: usize,
    /// Maximum idle UCs cached in total.
    pub idle_total: usize,
    /// OOM-daemon reclaim threshold, in frames (None = 2% of capacity).
    pub reclaim_threshold_frames: Option<u64>,
}

impl SeussConfig {
    /// The paper's evaluation node: 16 cores, 88 GB, full AO, Node.js.
    pub fn paper_node() -> Self {
        SeussConfig {
            cores: 16,
            mem_mib: 88 * 1024,
            ao: AoLevel::NetworkAndInterpreter,
            runtimes: vec![RuntimeKind::NodeJs],
            layout: Layout::nodejs(),
            uc_profile: UcProfile::nodejs(),
            runtime_profile: RuntimeProfile::nodejs(),
            idle_per_fn: 4,
            idle_total: 4096,
            reclaim_threshold_frames: None,
        }
    }

    /// A small fast node for unit tests.
    pub fn test_node() -> Self {
        SeussConfig {
            cores: 4,
            mem_mib: 768,
            ao: AoLevel::NetworkAndInterpreter,
            runtimes: vec![RuntimeKind::NodeJs],
            layout: Layout::nodejs(),
            uc_profile: UcProfile::tiny(),
            runtime_profile: RuntimeProfile::tiny(),
            idle_per_fn: 2,
            idle_total: 16,
            reclaim_threshold_frames: None,
        }
    }

    /// The paper's boot-to-ready budget for the whole node (boot + AO +
    /// base capture); informational.
    pub fn expected_init_floor(&self) -> SimDuration {
        self.uc_profile.boot_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_matches_testbed() {
        let c = SeussConfig::paper_node();
        assert_eq!(c.cores, 16);
        assert_eq!(c.mem_mib, 88 * 1024);
        assert_eq!(c.ao, AoLevel::NetworkAndInterpreter);
        assert_eq!(c.runtimes, vec![RuntimeKind::NodeJs]);
    }

    #[test]
    fn init_floor_is_the_boot_time() {
        let c = SeussConfig::paper_node();
        assert_eq!(c.expected_init_floor(), c.uc_profile.boot_time);
    }

    #[test]
    fn test_node_is_small() {
        let c = SeussConfig::test_node();
        assert!(c.mem_mib < 1024);
        assert!(c.uc_profile.boot_data_bytes < (1 << 20));
    }
}
