//! The exact-sum invariant: with tracing enabled, every `SeussNode`
//! segment produces one top-level span whose child phase spans have
//! durations *identical* to the `PathCosts` entries the segment
//! returned, and whose own duration equals `costs.total()` — not
//! approximately, exactly. The tracer's virtual clock only moves via
//! `advance(phase_cost)` inside phase spans, so the invariant holds by
//! construction; this test keeps it that way.

use seuss_core::{Invocation, PathCosts, PathKind, SeussConfig, SeussNode};
use seuss_trace::{SpanName, SpanRecord, Tracer};
use simcore::SimDuration;

const NOP: &str = "function main(args) { return 0; }";
const IO: &str = "function main(args) { let r = http_get('http://b/q'); return r; }";

fn traced_node() -> (SeussNode, Tracer) {
    let cfg = SeussConfig::test_builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    let (mut node, _) = SeussNode::new(cfg).expect("node");
    let tracer = Tracer::enabled();
    node.set_tracer(tracer.clone());
    (node, tracer)
}

fn completed(inv: Invocation) -> (PathKind, PathCosts) {
    match inv {
        Invocation::Completed { path, costs, .. } => (path, costs),
        other => panic!("expected completion, got {other:?}"),
    }
}

/// The last top-level (parentless) span and its direct children.
fn last_root(tracer: &Tracer) -> (SpanRecord, Vec<SpanRecord>) {
    let spans = tracer.spans();
    let root = *spans
        .iter()
        .rfind(|s| s.parent.is_none())
        .expect("a root span");
    let children = spans
        .iter()
        .filter(|s| s.parent == Some(root.id))
        .copied()
        .collect();
    (root, children)
}

/// Asserts the root span equals `costs.total()` and each child phase
/// span equals the corresponding `PathCosts` entry exactly.
fn assert_exact_sum(tracer: &Tracer, costs: &PathCosts) {
    let (root, children) = last_root(tracer);
    assert_eq!(
        root.duration().expect("closed"),
        costs.total(),
        "root span must equal costs.total() exactly"
    );
    let mut phase_sum = SimDuration::ZERO;
    for child in &children {
        let phase = match child.name {
            SpanName::Phase(p) => p,
            other => panic!("non-phase child {other:?} under {:?}", root.name),
        };
        let d = child.duration().expect("closed");
        assert_eq!(
            d,
            costs.get(phase),
            "phase span {phase:?} must equal its PathCosts entry"
        );
        phase_sum += d;
    }
    // Phases with zero cost may or may not get a span; either way the
    // recorded ones must account for the whole total.
    assert_eq!(phase_sum, costs.total(), "phase spans must cover the total");
    assert_eq!(tracer.open_spans(), 0, "no span may leak open");
}

#[test]
fn cold_path_spans_sum_exactly() {
    let (mut node, tracer) = traced_node();
    let (path, costs) = completed(node.invoke(1, NOP, &[]).expect("cold"));
    assert_eq!(path, PathKind::Cold);
    assert_exact_sum(&tracer, &costs);
    let (root, _) = last_root(&tracer);
    assert_eq!(root.name, SpanName::Invoke);
    assert_eq!(root.path, Some(PathKind::Cold));
    assert_eq!(root.fn_id, Some(1));
}

#[test]
fn hot_path_spans_sum_exactly() {
    let (mut node, tracer) = traced_node();
    node.invoke(1, NOP, &[]).expect("cold primes idle UC");
    tracer.clear();
    let (path, costs) = completed(node.invoke(1, NOP, &[]).expect("hot"));
    assert_eq!(path, PathKind::Hot);
    assert_exact_sum(&tracer, &costs);
}

#[test]
fn warm_path_spans_sum_exactly() {
    let (mut node, tracer) = traced_node();
    node.invoke(1, NOP, &[]).expect("cold primes fn snapshot");
    // Drain the idle cache so the next invocation deploys from the
    // function snapshot (warm) instead of reusing the idle UC (hot).
    while let Some(uc) = node.idle.take(1) {
        node.destroy_uc(uc);
    }
    tracer.clear();
    let (path, costs) = completed(node.invoke(1, NOP, &[]).expect("warm"));
    assert_eq!(path, PathKind::Warm);
    assert_exact_sum(&tracer, &costs);
}

#[test]
fn blocked_and_resumed_segments_each_sum_exactly() {
    let (mut node, tracer) = traced_node();
    let (token, costs) = match node.invoke(3, IO, &[]).expect("invoke") {
        Invocation::Blocked { token, costs, .. } => (token, costs),
        other => panic!("expected block, got {other:?}"),
    };
    assert_exact_sum(&tracer, &costs);

    tracer.clear();
    let (_, resume_costs) = completed(node.resume_invocation(token, "ok").expect("resume"));
    assert_exact_sum(&tracer, &resume_costs);
    let (root, _) = last_root(&tracer);
    assert_eq!(root.name, SpanName::Resume);
    assert_eq!(root.fn_id, Some(3));
}

#[test]
fn per_request_jsonl_durations_sum_to_costs() {
    // The acceptance check end to end: parse the exported JSONL, pair
    // enter/exit lines per span, and recover the per-phase durations —
    // they must reproduce PathCosts to the nanosecond.
    let (mut node, tracer) = traced_node();
    let (_, costs) = completed(node.invoke(7, NOP, &[]).expect("cold"));
    let doc = tracer.export_jsonl();
    seuss_trace::validate_jsonl(&doc).expect("well-formed");

    let mut enters: std::collections::HashMap<u64, (String, u64)> = Default::default();
    let mut phase_ns: u64 = 0;
    let mut invoke_ns: u64 = 0;
    for line in doc.lines() {
        let field = |k: &str| -> Option<String> {
            let pat = format!("\"{k}\":");
            let rest = &line[line.find(&pat)? + pat.len()..];
            let end = rest.find([',', '}']).unwrap();
            Some(rest[..end].trim_matches('"').to_string())
        };
        let ty = field("type").unwrap();
        if ty == "enter" {
            let id: u64 = field("id").unwrap().parse().unwrap();
            let t: u64 = field("t").unwrap().parse().unwrap();
            enters.insert(id, (field("name").unwrap(), t));
        } else if ty == "exit" {
            let id: u64 = field("id").unwrap().parse().unwrap();
            let t: u64 = field("t").unwrap().parse().unwrap();
            let (name, start) = enters.remove(&id).expect("exit after enter");
            if name.starts_with("phase:") {
                phase_ns += t - start;
            } else if name == "invoke" {
                invoke_ns = t - start;
            }
        }
    }
    assert_eq!(
        phase_ns,
        costs.total().as_nanos(),
        "phase lines sum to total"
    );
    assert_eq!(
        invoke_ns,
        costs.total().as_nanos(),
        "invoke line spans total"
    );
}
