//! Acceptance check for the disabled-mode cost contract at the invoke
//! level: with a disabled tracer, the trace hooks inside
//! `SeussNode::invoke` contribute zero heap allocations.
//!
//! Method: drive two freshly built, identical nodes through the
//! identical invocation sequence — one never touches the tracer, the
//! other has a disabled tracer explicitly installed (after an
//! enable/disable round-trip, so the hooks demonstrably ran). Their
//! per-invocation allocation counts must match exactly. A third node
//! with tracing left enabled must allocate strictly more, proving the
//! counter and the hooks are live on this code path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use seuss_core::{SeussConfig, SeussNode};
use seuss_trace::Tracer;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const NOP: &str = "function main(args) { return 0; }";

fn fresh_node() -> SeussNode {
    let cfg = SeussConfig::test_builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    SeussNode::new(cfg).expect("node").0
}

/// One cold invocation then a run of hot ones, returning the allocation
/// count of each (cold exercises deploy/import/capture hooks, hot the
/// steady-state path).
fn drive(node: &mut SeussNode) -> Vec<u64> {
    (0..65)
        .map(|_| {
            let before = ALLOCS.load(Ordering::SeqCst);
            node.invoke(1, NOP, &[]).expect("invoke");
            ALLOCS.load(Ordering::SeqCst) - before
        })
        .collect()
}

#[test]
fn disabled_tracing_adds_zero_allocations_to_invoke() {
    // Node A: never interacts with tracing beyond the built-in default.
    let mut node_a = fresh_node();
    let seq_a = drive(&mut node_a);

    // Node B: tracer hooks exercised (enable, then disable) before the
    // identical drive. Identical counts ⇒ disabled hooks allocate zero.
    let mut node_b = fresh_node();
    node_b.set_tracer(Tracer::enabled());
    node_b.set_tracer(Tracer::disabled());
    let seq_b = drive(&mut node_b);
    assert_eq!(
        seq_a, seq_b,
        "a disabled tracer must not change invoke's allocation profile"
    );

    // Node C: tracing enabled throughout — must allocate strictly more,
    // so the counter and the hooks are demonstrably live.
    let mut node_c = fresh_node();
    node_c.set_tracer(Tracer::enabled());
    let seq_c = drive(&mut node_c);
    let (sum_a, sum_c) = (seq_a.iter().sum::<u64>(), seq_c.iter().sum::<u64>());
    assert!(
        sum_c > sum_a,
        "enabled tracing must allocate (got {sum_c} vs baseline {sum_a})"
    );
}
