//! Property tests on the interpreter (driven by `seuss-check`):
//!
//! 1. generated arithmetic expression trees evaluate to the same value a
//!    host-side reference evaluator computes;
//! 2. the lexer/parser never panic on arbitrary input;
//! 3. fuel-sliced execution produces the same result as one-shot
//!    execution (resumability is semantics-preserving).

use seuss_check::{check_with, ensure, ensure_eq, gen::Gen, Config, SimRng};

use miniscript::{HostHeap, Interpreter, RuntimeProfile, Value, VmExit};

/// Host-side reference AST mirroring the generated expression.
#[derive(Clone, Debug, PartialEq)]
enum E {
    Num(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

impl E {
    fn eval(&self) -> f64 {
        match self {
            E::Num(n) => *n as f64,
            E::Add(a, b) => a.eval() + b.eval(),
            E::Sub(a, b) => a.eval() - b.eval(),
            E::Mul(a, b) => a.eval() * b.eval(),
        }
    }

    fn src(&self) -> String {
        match self {
            E::Num(n) => {
                if *n < 0 {
                    format!("(0 - {})", -(*n as i64))
                } else {
                    n.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.src(), b.src()),
            E::Sub(a, b) => format!("({} - {})", a.src(), b.src()),
            E::Mul(a, b) => format!("({} * {})", a.src(), b.src()),
        }
    }
}

/// Bounded-depth recursive expression generator. Shrinking replaces a
/// node by its subtrees (and numbers by smaller numbers), so failing
/// expressions minimize toward a single literal.
struct ExprGen {
    max_depth: u32,
}

impl ExprGen {
    fn gen_at(&self, depth: u32, rng: &mut SimRng) -> E {
        // Bias toward leaves as depth grows so trees stay small.
        if depth >= self.max_depth || rng.next_below(3) == 0 {
            return E::Num(rng.next_below(200) as i32 - 100);
        }
        let a = Box::new(self.gen_at(depth + 1, rng));
        let b = Box::new(self.gen_at(depth + 1, rng));
        match rng.next_below(3) {
            0 => E::Add(a, b),
            1 => E::Sub(a, b),
            _ => E::Mul(a, b),
        }
    }
}

impl Gen for ExprGen {
    type Value = E;

    fn generate(&self, rng: &mut SimRng) -> E {
        self.gen_at(0, rng)
    }

    fn shrink(&self, value: &E) -> Vec<E> {
        match value {
            E::Num(0) => Vec::new(),
            E::Num(n) => vec![E::Num(0), E::Num(n / 2)],
            E::Add(a, b) | E::Sub(a, b) | E::Mul(a, b) => {
                vec![(**a).clone(), (**b).clone(), E::Num(0)]
            }
        }
    }
}

fn run_source(src: &str) -> Value {
    let mut backend = HostHeap::with_capacity(8 << 20);
    let mut interp = Interpreter::new(RuntimeProfile::tiny());
    let prog = interp.load_source(&mut backend, src).expect("compile");
    match interp.run_main(&mut backend, prog, u64::MAX).expect("run") {
        VmExit::Done(v) => v,
        other => panic!("unexpected exit {other:?}"),
    }
}

#[test]
fn arithmetic_matches_reference() {
    check_with(
        Config::with_cases(128),
        "interp_arith_reference",
        &ExprGen { max_depth: 5 },
        |e| {
            let src = format!("{};", e.src());
            match run_source(&src) {
                Value::Num(n) => ensure_eq!(n, e.eval()),
                other => return Err(format!("non-numeric result {other:?}")),
            }
            Ok(())
        },
    );
}

#[test]
fn lexer_and_parser_never_panic() {
    // Arbitrary junk (any non-control unicode, like proptest's `\PC`) may
    // fail to compile, but must fail cleanly.
    let junk = seuss_check::vecs(seuss_check::range(0x20u32, 0x2_FFFF), 0, 120).map(|points| {
        points
            .into_iter()
            .filter_map(char::from_u32)
            .filter(|c| !c.is_control())
            .collect::<String>()
    });
    check_with(
        Config::with_cases(128),
        "interp_lexer_total",
        &junk,
        |src| {
            let _ = miniscript::compile(src);
            Ok(())
        },
    );
}

#[test]
fn structured_garbage_never_panics() {
    let tokens = seuss_check::vecs(
        seuss_check::choice(vec![
            "let", "function", "return", "if", "else", "while", "(", ")", "{", "}", "+", "-", "*",
            "/", "==", "x", "y", "1", "2.5", "'s'", ";", ",", "[", "]", ".", "=",
        ]),
        0,
        40,
    );
    check_with(
        Config::with_cases(128),
        "interp_parser_total",
        &tokens,
        |tokens| {
            let src = tokens.join(" ");
            let _ = miniscript::compile(&src);
            Ok(())
        },
    );
}

#[test]
fn fuel_slicing_preserves_semantics() {
    let cases = (seuss_check::range(1u32, 59), seuss_check::range(7u64, 199));
    check_with(
        Config::with_cases(128),
        "interp_fuel_slicing",
        &cases,
        |&(n, fuel)| {
            let src =
                format!("let s = 0; let i = 0; while (i < {n}) {{ s = s + i * i; i = i + 1; }} s;");
            let oneshot = run_source(&src);

            let mut backend = HostHeap::with_capacity(8 << 20);
            let mut interp = Interpreter::new(RuntimeProfile::tiny());
            let prog = interp.load_source(&mut backend, &src).expect("compile");
            let mut exit = interp.run_main(&mut backend, prog, fuel).expect("run");
            let mut rounds = 0u32;
            while exit == VmExit::OutOfFuel {
                exit = interp
                    .resume(&mut backend, Value::Null, fuel)
                    .expect("resume");
                rounds += 1;
                ensure!(rounds < 100_000, "diverged");
            }
            match exit {
                VmExit::Done(v) => ensure_eq!(v, oneshot),
                other => return Err(format!("unexpected exit {other:?}")),
            }
            Ok(())
        },
    );
}
