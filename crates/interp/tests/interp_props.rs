//! Property tests on the interpreter:
//!
//! 1. generated arithmetic expression trees evaluate to the same value a
//!    host-side reference evaluator computes;
//! 2. the lexer/parser never panic on arbitrary input;
//! 3. fuel-sliced execution produces the same result as one-shot
//!    execution (resumability is semantics-preserving).

use proptest::prelude::*;

use miniscript::{HostHeap, Interpreter, RuntimeProfile, Value, VmExit};

/// Host-side reference AST mirroring the generated expression.
#[derive(Clone, Debug)]
enum E {
    Num(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

impl E {
    fn eval(&self) -> f64 {
        match self {
            E::Num(n) => *n as f64,
            E::Add(a, b) => a.eval() + b.eval(),
            E::Sub(a, b) => a.eval() - b.eval(),
            E::Mul(a, b) => a.eval() * b.eval(),
        }
    }

    fn src(&self) -> String {
        match self {
            E::Num(n) => {
                if *n < 0 {
                    format!("(0 - {})", -(*n as i64))
                } else {
                    n.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.src(), b.src()),
            E::Sub(a, b) => format!("({} - {})", a.src(), b.src()),
            E::Mul(a, b) => format!("({} * {})", a.src(), b.src()),
        }
    }
}

fn expr() -> impl Strategy<Value = E> {
    let leaf = (-100i32..100).prop_map(E::Num);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn run_source(src: &str) -> Value {
    let mut backend = HostHeap::with_capacity(8 << 20);
    let mut interp = Interpreter::new(RuntimeProfile::tiny());
    let prog = interp.load_source(&mut backend, src).expect("compile");
    match interp.run_main(&mut backend, prog, u64::MAX).expect("run") {
        VmExit::Done(v) => v,
        other => panic!("unexpected exit {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arithmetic_matches_reference(e in expr()) {
        let src = format!("{};", e.src());
        match run_source(&src) {
            Value::Num(n) => prop_assert_eq!(n, e.eval()),
            other => prop_assert!(false, "non-numeric result {:?}", other),
        }
    }

    #[test]
    fn lexer_and_parser_never_panic(src in "\\PC{0,120}") {
        // Arbitrary junk may fail to compile, but must fail cleanly.
        let _ = miniscript::compile(&src);
    }

    #[test]
    fn structured_garbage_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "let", "function", "return", "if", "else", "while", "(", ")",
                "{", "}", "+", "-", "*", "/", "==", "x", "y", "1", "2.5",
                "'s'", ";", ",", "[", "]", ".", "=",
            ]),
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = miniscript::compile(&src);
    }

    #[test]
    fn fuel_slicing_preserves_semantics(n in 1u32..60, fuel in 7u64..200) {
        let src = format!(
            "let s = 0; let i = 0; while (i < {n}) {{ s = s + i * i; i = i + 1; }} s;"
        );
        let oneshot = run_source(&src);

        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp.load_source(&mut backend, &src).expect("compile");
        let mut exit = interp.run_main(&mut backend, prog, fuel).expect("run");
        let mut rounds = 0u32;
        while exit == VmExit::OutOfFuel {
            exit = interp.resume(&mut backend, Value::Null, fuel).expect("resume");
            rounds += 1;
            prop_assert!(rounds < 100_000, "diverged");
        }
        match exit {
            VmExit::Done(v) => prop_assert_eq!(v, oneshot),
            other => prop_assert!(false, "unexpected exit {:?}", other),
        }
    }
}
