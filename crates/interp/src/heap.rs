//! The interpreter heap: bump allocation over a pluggable backing store.
//!
//! Everything the interpreter allocates — interned strings, object backing
//! stores, compile arenas, lazily-initialized runtime subsystems — is
//! committed through a [`HeapBackend`]. The unikernel crate implements the
//! trait over a UC address space (so every allocation dirties guest pages
//! and participates in snapshots/COW); tests and host-side tools use the
//! in-memory [`HostHeap`].

use core::fmt;

/// Errors surfaced by a heap backend or the allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// The bump region is exhausted.
    OutOfHeap,
    /// The backing store rejected the access (page fault, OOM, …).
    BackendFault,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfHeap => write!(f, "interpreter heap exhausted"),
            HeapError::BackendFault => write!(f, "heap backend fault"),
        }
    }
}

impl std::error::Error for HeapError {}

/// A byte-addressable backing store for the interpreter heap.
///
/// Addresses are absolute within the runtime's heap region; the backend
/// decides what they mean (guest virtual addresses for a UC, plain vector
/// offsets for [`HostHeap`]).
pub trait HeapBackend {
    /// Writes `bytes` at `addr`.
    fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), HeapError>;
    /// Reads `out.len()` bytes from `addr`.
    fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), HeapError>;
}

/// Simple growable in-memory backend for tests and host tools.
pub struct HostHeap {
    base: u64,
    bytes: Vec<u8>,
}

impl HostHeap {
    /// Creates a backend with the given capacity, based at address 0x1000.
    pub fn with_capacity(capacity: usize) -> Self {
        HostHeap {
            base: 0x1000,
            bytes: vec![0; capacity],
        }
    }

    /// The first valid address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }
}

impl HeapBackend for HostHeap {
    fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), HeapError> {
        let off = addr.checked_sub(self.base).ok_or(HeapError::BackendFault)? as usize;
        if off + bytes.len() > self.bytes.len() {
            return Err(HeapError::BackendFault);
        }
        self.bytes[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), HeapError> {
        let off = addr.checked_sub(self.base).ok_or(HeapError::BackendFault)? as usize;
        if off + out.len() > self.bytes.len() {
            return Err(HeapError::BackendFault);
        }
        out.copy_from_slice(&self.bytes[off..off + out.len()]);
        Ok(())
    }
}

/// Allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of allocations.
    pub allocs: u64,
    /// Bytes handed out.
    pub bytes_allocated: u64,
    /// Bytes written through the backend.
    pub bytes_written: u64,
}

/// Bump allocator bookkeeping over a backend-managed region.
#[derive(Clone, Debug)]
pub struct BumpHeap {
    base: u64,
    brk: u64,
    limit: u64,
    stats: HeapStats,
}

impl BumpHeap {
    /// Creates an allocator over `[base, base + size)`.
    pub fn new(base: u64, size: u64) -> Self {
        BumpHeap {
            base,
            brk: base,
            limit: base + size,
            stats: HeapStats::default(),
        }
    }

    /// Allocates `n` bytes, 8-byte aligned. No free — the region lives and
    /// dies with its UC, like a runtime's semispace before first GC.
    pub fn alloc(&mut self, n: u64) -> Result<u64, HeapError> {
        let addr = (self.brk + 7) & !7;
        let end = addr.checked_add(n).ok_or(HeapError::OutOfHeap)?;
        if end > self.limit {
            return Err(HeapError::OutOfHeap);
        }
        self.brk = end;
        self.stats.allocs += 1;
        self.stats.bytes_allocated += n;
        Ok(addr)
    }

    /// Allocates and writes `bytes`, returning the address.
    pub fn alloc_bytes(
        &mut self,
        backend: &mut dyn HeapBackend,
        bytes: &[u8],
    ) -> Result<u64, HeapError> {
        let addr = self.alloc(bytes.len() as u64)?;
        backend.write(addr, bytes)?;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(addr)
    }

    /// Allocates `n` bytes and *commits* them: touches one word per 4 KiB
    /// page so every page of the allocation is genuinely written (the
    /// runtime behaviour that makes lazy-init allocations dirty pages).
    pub fn alloc_committed(
        &mut self,
        backend: &mut dyn HeapBackend,
        n: u64,
    ) -> Result<u64, HeapError> {
        let addr = self.alloc(n)?;
        let mut off = 0u64;
        while off < n {
            backend.write(addr + off, &1u64.to_le_bytes())?;
            self.stats.bytes_written += 8;
            off += 4096;
        }
        Ok(addr)
    }

    /// Current break (next allocation address before alignment).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.limit - self.brk
    }

    /// Region base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Statistics so far.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_aligned() {
        let mut h = BumpHeap::new(0x1000, 4096);
        let a = h.alloc(3).unwrap();
        let b = h.alloc(8).unwrap();
        assert_eq!(a, 0x1000);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 3);
    }

    #[test]
    fn bump_exhausts() {
        let mut h = BumpHeap::new(0, 16);
        h.alloc(8).unwrap();
        h.alloc(8).unwrap();
        assert_eq!(h.alloc(1), Err(HeapError::OutOfHeap));
    }

    #[test]
    fn host_heap_round_trip() {
        let mut backend = HostHeap::with_capacity(1024);
        let mut h = BumpHeap::new(backend.base(), 1024);
        let addr = h.alloc_bytes(&mut backend, b"hello").unwrap();
        let mut buf = [0u8; 5];
        backend.read(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(h.stats().allocs, 1);
        assert_eq!(h.stats().bytes_written, 5);
    }

    #[test]
    fn host_heap_bounds_checked() {
        let mut backend = HostHeap::with_capacity(16);
        assert_eq!(
            backend.write(0x1010, &[0u8; 8]),
            Err(HeapError::BackendFault)
        );
        assert_eq!(backend.write(0, &[0]), Err(HeapError::BackendFault));
    }

    #[test]
    fn alloc_committed_touches_every_page() {
        let mut backend = HostHeap::with_capacity(64 * 1024);
        let mut h = BumpHeap::new(backend.base(), 64 * 1024);
        h.alloc_committed(&mut backend, 3 * 4096 + 1).unwrap();
        // Four pages touched → four word writes.
        assert_eq!(h.stats().bytes_written, 32);
    }
}
