//! The stack VM and the [`Interpreter`] that hosts it.
//!
//! The interpreter owns everything that survives across runs — globals,
//! loaded programs, the object store, the bump heap, lazy-init latches —
//! because that persistence is exactly what SEUSS snapshots capture: an
//! interpreter that has already compiled and executed something resumes
//! with those latches set and those pages dirty.
//!
//! Execution is resumable. `http_get` suspends the VM with
//! [`VmExit::Blocked`] so the discrete-event simulation can model the
//! blocking external call; fuel exhaustion suspends with
//! [`VmExit::OutOfFuel`]. Both resume via [`Interpreter::resume`].

use std::collections::HashMap;

use crate::bytecode::{Op, Program};
use crate::compile::{compile, CompileError};
use crate::heap::{BumpHeap, HeapBackend, HeapError, HeapStats};
use crate::profile::RuntimeProfile;
use crate::value::{ObjStore, StrRef, Value};

/// Identifier of a loaded program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgId(pub u32);

/// A host call that suspends the VM.
#[derive(Clone, Debug, PartialEq)]
pub enum HostCall {
    /// `http_get(url)`: blocking external HTTP request.
    HttpGet(String),
}

/// How a (possibly partial) run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum VmExit {
    /// The script/function finished with this value.
    Done(Value),
    /// Suspended on a host call; resume with the call's result.
    Blocked(HostCall),
    /// Suspended on fuel exhaustion; resume to continue.
    OutOfFuel,
}

/// Script-level runtime errors (these kill the invocation, not the host).
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// Reference to an undefined variable.
    Undefined(String),
    /// Operation applied to the wrong type.
    Type(String),
    /// Heap exhaustion or backend fault.
    Heap(HeapError),
    /// `resume` called with no suspended run.
    NotSuspended,
    /// Named global is not callable / not found for `call_global`.
    NotCallable(String),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::Undefined(n) => write!(f, "undefined variable '{n}'"),
            RuntimeError::Type(m) => write!(f, "type error: {m}"),
            RuntimeError::Heap(e) => write!(f, "heap error: {e}"),
            RuntimeError::NotSuspended => write!(f, "no suspended execution to resume"),
            RuntimeError::NotCallable(n) => write!(f, "'{n}' is not callable"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<HeapError> for RuntimeError {
    fn from(e: HeapError) -> Self {
        RuntimeError::Heap(e)
    }
}

/// Errors from loading source into the interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadError {
    /// The source failed to compile.
    Compile(CompileError),
    /// Committing the compiled artifact to the heap failed.
    Heap(HeapError),
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Compile(e) => write!(f, "{e}"),
            LoadError::Heap(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

const BUILTINS: &[&str] = &[
    "log",         // 0
    "spin",        // 1
    "http_get",    // 2
    "len",         // 3
    "str",         // 4
    "num",         // 5
    "push",        // 6
    "floor",       // 7
    "sqrt",        // 8
    "abs",         // 9
    "max",         // 10
    "min",         // 11
    "random",      // 12
    "alloc_bytes", // 13
    "json",        // 14
    "keys",        // 15
    "substr",      // 16
    "upper",       // 17
    "lower",       // 18
    "contains",    // 19
];

#[derive(Clone)]
struct Frame {
    prog: u32,
    chunk: u32,
    ip: usize,
    locals: Vec<Value>,
}

#[derive(Clone)]
struct Suspended {
    frames: Vec<Frame>,
    stack: Vec<Value>,
    /// Whether the suspension awaits a host-call result value.
    awaiting_value: bool,
}

/// The persistent language runtime: programs, globals, heap, latches.
///
/// `Clone` is load-bearing: a snapshot stores the interpreter state as of
/// capture (the semantic mirror of the captured guest pages), and deploys
/// clone it. The kernel wraps interpreters in `Rc` so idle deploys stay
/// cheap and copies materialize only on mutation.
#[derive(Clone)]
pub struct Interpreter {
    profile: RuntimeProfile,
    heap: BumpHeap,
    objects: ObjStore,
    globals: HashMap<String, Value>,
    programs: Vec<Program>,
    /// Host-side mirror of interned strings, keyed by guest address.
    strings: HashMap<u64, String>,
    result: Value,
    cycles: u64,
    did_first_compile: bool,
    did_first_exec: bool,
    suspended: Option<Suspended>,
    rng: u64,
}

impl Interpreter {
    /// Creates a runtime with the given profile.
    pub fn new(profile: RuntimeProfile) -> Self {
        Interpreter {
            profile,
            heap: BumpHeap::new(profile.heap_base, profile.heap_size),
            objects: ObjStore::new(),
            globals: HashMap::new(),
            programs: Vec::new(),
            strings: HashMap::new(),
            result: Value::Null,
            cycles: 0,
            did_first_compile: false,
            did_first_exec: false,
            suspended: None,
            rng: 0x5EED_5EED,
        }
    }

    /// Total virtual cycles consumed so far (monotone; 1 cycle ≈ 1 ns).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Heap allocation statistics.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }

    /// Whether the one-time compile path has been exercised (interpreter AO).
    pub fn warmed_compile(&self) -> bool {
        self.did_first_compile
    }

    /// Whether the one-time execution path has been exercised.
    pub fn warmed_exec(&self) -> bool {
        self.did_first_exec
    }

    /// Whether a run is currently suspended.
    pub fn is_suspended(&self) -> bool {
        self.suspended.is_some()
    }

    /// Compiles and loads source, charging compile-time heap traffic and
    /// cycles (including the one-time first-compile initialization).
    pub fn load_source(
        &mut self,
        backend: &mut dyn HeapBackend,
        src: &str,
    ) -> Result<ProgId, LoadError> {
        let program = compile(src).map_err(LoadError::Compile)?;
        self.load(backend, program).map_err(LoadError::Heap)
    }

    /// Loads a pre-compiled program, charging the same costs as
    /// [`Interpreter::load_source`].
    pub fn load(
        &mut self,
        backend: &mut dyn HeapBackend,
        program: Program,
    ) -> Result<ProgId, HeapError> {
        if !self.did_first_compile {
            self.did_first_compile = true;
            self.heap
                .alloc_committed(backend, self.profile.first_compile_extra_bytes)?;
            self.cycles += self.profile.first_compile_extra_cycles;
        }
        let src_len = program.source_len as u64;
        let commit = self.profile.per_compile_fixed_bytes
            + self.profile.per_compile_bytes_per_src_byte * src_len
            + program.code_bytes() as u64;
        self.heap.alloc_committed(backend, commit)?;
        self.cycles +=
            self.profile.compile_cycles_fixed + self.profile.compile_cycles_per_src_byte * src_len;
        self.programs.push(program);
        Ok(ProgId(self.programs.len() as u32 - 1))
    }

    /// One-time charge on the first *function-body* execution (V8-style
    /// IC/feedback-vector materialization). Top-level module evaluation
    /// does not trigger it — which is why a function snapshot captured
    /// after import-and-compile still pays this on its first warm run
    /// (Table 2's E term).
    fn ensure_first_exec(&mut self, backend: &mut dyn HeapBackend) -> Result<(), HeapError> {
        if self.did_first_exec {
            return Ok(());
        }
        self.did_first_exec = true;
        self.heap
            .alloc_committed(backend, self.profile.first_exec_extra_bytes)?;
        self.cycles += self.profile.first_exec_extra_cycles;
        Ok(())
    }

    /// Materializes the builtin namespace objects (console, Math) on the
    /// first execution of any code, without the first-exec charge.
    fn ensure_builtins(&mut self, backend: &mut dyn HeapBackend) -> Result<(), HeapError> {
        if self.globals.contains_key("console") {
            return Ok(());
        }
        // Materialize the builtin namespace objects.
        let console = self.objects.new_object(&mut self.heap, backend)?;
        self.objects
            .set_prop(&mut self.heap, backend, console, "log", Value::Builtin(0))?;
        self.objects
            .set_prop(&mut self.heap, backend, console, "error", Value::Builtin(0))?;
        self.globals
            .insert("console".into(), Value::Object(console));
        let math = self.objects.new_object(&mut self.heap, backend)?;
        for (name, idx) in [
            ("floor", 7u32),
            ("sqrt", 8),
            ("abs", 9),
            ("max", 10),
            ("min", 11),
            ("random", 12),
        ] {
            self.objects
                .set_prop(&mut self.heap, backend, math, name, Value::Builtin(idx))?;
        }
        self.globals.insert("Math".into(), Value::Object(math));
        Ok(())
    }

    fn intern(&mut self, backend: &mut dyn HeapBackend, s: &str) -> Result<StrRef, HeapError> {
        let addr = self.heap.alloc_bytes(backend, s.as_bytes())?;
        let r = StrRef {
            addr,
            len: s.len() as u32,
        };
        self.strings.insert(addr, s.to_string());
        Ok(r)
    }

    /// The host-side text of an interned string.
    pub fn str_text(&self, r: StrRef) -> &str {
        self.strings.get(&r.addr).map(|s| s.as_str()).unwrap_or("")
    }

    /// Renders a value for logging / result reporting.
    pub fn display(&self, v: Value) -> String {
        match v {
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".into(),
            Value::Str(s) => self.str_text(s).to_string(),
            Value::Array(id) => format!("[array len {}]", self.objects.array_len(id)),
            Value::Object(id) => format!("[object props {}]", self.objects.prop_count(id)),
            Value::Function(..) => "[function]".into(),
            Value::Builtin(i) => format!("[builtin {}]", BUILTINS[i as usize]),
        }
    }

    /// Runs a loaded program's top level.
    pub fn run_main(
        &mut self,
        backend: &mut dyn HeapBackend,
        prog: ProgId,
        fuel: u64,
    ) -> Result<VmExit, RuntimeError> {
        self.ensure_builtins(backend)?;
        self.result = Value::Null;
        let chunk = &self.programs[prog.0 as usize].chunks[0];
        let frame = Frame {
            prog: prog.0,
            chunk: 0,
            ip: 0,
            locals: vec![Value::Null; chunk.num_locals as usize],
        };
        self.suspended = Some(Suspended {
            frames: vec![frame],
            stack: Vec::new(),
            awaiting_value: false,
        });
        self.execute(backend, fuel)
    }

    /// Calls a global function by name (the invocation driver's entry).
    pub fn call_global(
        &mut self,
        backend: &mut dyn HeapBackend,
        name: &str,
        args: &[Value],
        fuel: u64,
    ) -> Result<VmExit, RuntimeError> {
        self.ensure_builtins(backend)?;
        self.ensure_first_exec(backend)?;
        let Some(&Value::Function(prog, chunk)) = self.globals.get(name) else {
            return Err(RuntimeError::NotCallable(name.to_string()));
        };
        let c = &self.programs[prog as usize].chunks[chunk as usize];
        let mut locals = vec![Value::Null; c.num_locals as usize];
        for (i, a) in args.iter().take(c.num_params as usize).enumerate() {
            locals[i] = *a;
        }
        let frame = Frame {
            prog,
            chunk,
            ip: 0,
            locals,
        };
        self.suspended = Some(Suspended {
            frames: vec![frame],
            stack: Vec::new(),
            awaiting_value: false,
        });
        self.execute(backend, fuel)
    }

    /// Resumes a suspended run, pushing `value` as the host-call result
    /// (ignored after fuel exhaustion… a `Null` is conventional there).
    pub fn resume(
        &mut self,
        backend: &mut dyn HeapBackend,
        value: Value,
        fuel: u64,
    ) -> Result<VmExit, RuntimeError> {
        match &mut self.suspended {
            Some(s) if !s.frames.is_empty() => {
                if s.awaiting_value {
                    s.stack.push(value);
                    s.awaiting_value = false;
                }
                self.execute(backend, fuel)
            }
            _ => Err(RuntimeError::NotSuspended),
        }
    }

    /// Runs a moving-GC compaction pass: every live object's backing
    /// store relocates to fresh pages. Returns `(objects moved, bytes
    /// rewritten)`. See `ObjStore::compact` for why this matters to COW.
    pub fn run_gc(&mut self, backend: &mut dyn HeapBackend) -> Result<(u64, u64), RuntimeError> {
        let r = self.objects.compact(&mut self.heap, backend)?;
        // Copying costs cycles proportional to bytes moved.
        self.cycles += r.1 / 8;
        Ok(r)
    }

    /// Allocates a string value (hosts use this to pass arguments in).
    pub fn make_str(
        &mut self,
        backend: &mut dyn HeapBackend,
        s: &str,
    ) -> Result<Value, RuntimeError> {
        Ok(Value::Str(self.intern(backend, s)?))
    }

    /// Allocates an object value from string properties (invocation args).
    pub fn make_arg_object(
        &mut self,
        backend: &mut dyn HeapBackend,
        props: &[(&str, &str)],
    ) -> Result<Value, RuntimeError> {
        let id = self.objects.new_object(&mut self.heap, backend)?;
        for (k, v) in props {
            let vs = self.intern(backend, v)?;
            self.objects
                .set_prop(&mut self.heap, backend, id, k, Value::Str(vs))?;
        }
        Ok(Value::Object(id))
    }

    /// Renders a value as JSON (depth-capped; cycles render as null).
    fn to_json(&self, v: Value, depth: u32) -> String {
        if depth > 16 {
            return "null".into();
        }
        match v {
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".into(),
            Value::Str(s) => format!("{:?}", self.str_text(s)),
            Value::Array(id) => {
                let items: Vec<String> = (0..self.objects.array_len(id))
                    .map(|i| self.to_json(self.objects.get_index(id, i), depth + 1))
                    .collect();
                format!("[{}]", items.join(","))
            }
            Value::Object(id) => {
                let mut keys = self.objects.prop_keys(id);
                keys.sort();
                let items: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "{:?}:{}",
                            k,
                            self.to_json(self.objects.get_prop(id, k), depth + 1)
                        )
                    })
                    .collect();
                format!("{{{}}}", items.join(","))
            }
            Value::Function(..) | Value::Builtin(_) => "null".into(),
        }
    }

    fn next_random(&mut self) -> f64 {
        // xorshift64*; deterministic Math.random.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[allow(clippy::too_many_lines)]
    fn execute(
        &mut self,
        backend: &mut dyn HeapBackend,
        mut fuel: u64,
    ) -> Result<VmExit, RuntimeError> {
        let Suspended {
            mut frames,
            mut stack,
            awaiting_value: _,
        } = self.suspended.take().ok_or(RuntimeError::NotSuspended)?;

        macro_rules! suspend {
            ($exit:expr, $awaiting:expr) => {{
                self.suspended = Some(Suspended {
                    frames,
                    stack,
                    awaiting_value: $awaiting,
                });
                return Ok($exit);
            }};
        }

        'outer: loop {
            let Some(frame) = frames.last_mut() else {
                // call_global path drains frames by pushing the return
                // value; main path uses the result register.
                let v = stack.pop().unwrap_or(self.result);
                return Ok(VmExit::Done(v));
            };
            let chunk = &self.programs[frame.prog as usize].chunks[frame.chunk as usize];
            if frame.ip >= chunk.code.len() {
                // Fell off the end (defensive; compiler always emits Return).
                frames.pop();
                stack.push(Value::Null);
                continue;
            }
            if fuel == 0 {
                suspend!(VmExit::OutOfFuel, false);
            }
            fuel -= 1;
            self.cycles += 1;
            let op = chunk.code[frame.ip].clone();
            frame.ip += 1;
            let prog_idx = frame.prog;

            macro_rules! pop {
                () => {
                    stack.pop().expect("compiler guarantees stack depth")
                };
            }
            macro_rules! bin_num {
                ($op:tt) => {{
                    let b = pop!();
                    let a = pop!();
                    match (a, b) {
                        (Value::Num(x), Value::Num(y)) => stack.push(Value::Num(x $op y)),
                        (a, b) => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "numeric op on {} and {}",
                                a.type_name(),
                                b.type_name()
                            )));
                        }
                    }
                }};
            }
            macro_rules! cmp_num {
                ($op:tt) => {{
                    let b = pop!();
                    let a = pop!();
                    match (a, b) {
                        (Value::Num(x), Value::Num(y)) => stack.push(Value::Bool(x $op y)),
                        (Value::Str(x), Value::Str(y)) => {
                            let xs = self.str_text(x).to_string();
                            let ys = self.str_text(y).to_string();
                            stack.push(Value::Bool(xs.as_str() $op ys.as_str()));
                        }
                        (a, b) => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "comparison on {} and {}",
                                a.type_name(),
                                b.type_name()
                            )));
                        }
                    }
                }};
            }

            match op {
                Op::Num(n) => stack.push(Value::Num(n)),
                Op::Str(i) => {
                    let s = self.programs[prog_idx as usize].strings[i as usize].clone();
                    let v = Value::Str(self.intern(backend, &s)?);
                    stack.push(v);
                }
                Op::Bool(b) => stack.push(Value::Bool(b)),
                Op::Null => stack.push(Value::Null),
                Op::LoadLocal(slot) => {
                    let v = frame.locals[slot as usize];
                    stack.push(v);
                }
                Op::StoreLocal(slot) => {
                    let v = pop!();
                    if frame.locals.len() <= slot as usize {
                        frame.locals.resize(slot as usize + 1, Value::Null);
                    }
                    frame.locals[slot as usize] = v;
                }
                Op::LoadGlobal(n) => {
                    let name = &self.programs[prog_idx as usize].names[n as usize];
                    let v = match self.globals.get(name) {
                        Some(v) => *v,
                        None => match BUILTINS.iter().position(|b| b == name) {
                            Some(i) => Value::Builtin(i as u32),
                            None => {
                                let name = name.clone();
                                self.suspended = None;
                                return Err(RuntimeError::Undefined(name));
                            }
                        },
                    };
                    stack.push(v);
                }
                Op::StoreGlobal(n) => {
                    let v = pop!();
                    let name = self.programs[prog_idx as usize].names[n as usize].clone();
                    self.globals.insert(name, v);
                }
                Op::Add => {
                    let b = pop!();
                    let a = pop!();
                    match (a, b) {
                        (Value::Num(x), Value::Num(y)) => stack.push(Value::Num(x + y)),
                        (Value::Str(_), _) | (_, Value::Str(_)) => {
                            let s = format!("{}{}", self.display(a), self.display(b));
                            let v = Value::Str(self.intern(backend, &s)?);
                            stack.push(v);
                        }
                        (a, b) => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "cannot add {} and {}",
                                a.type_name(),
                                b.type_name()
                            )));
                        }
                    }
                }
                Op::Sub => bin_num!(-),
                Op::Mul => bin_num!(*),
                Op::Div => bin_num!(/),
                Op::Mod => bin_num!(%),
                Op::Eq | Op::Ne => {
                    let b = pop!();
                    let a = pop!();
                    let eq = match (a, b) {
                        (Value::Str(x), Value::Str(y)) => {
                            x == y || self.str_text(x) == self.str_text(y)
                        }
                        (a, b) => a == b,
                    };
                    stack.push(Value::Bool(if matches!(op, Op::Eq) { eq } else { !eq }));
                }
                Op::Lt => cmp_num!(<),
                Op::Le => cmp_num!(<=),
                Op::Gt => cmp_num!(>),
                Op::Ge => cmp_num!(>=),
                Op::Neg => {
                    let a = pop!();
                    match a {
                        Value::Num(n) => stack.push(Value::Num(-n)),
                        other => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "cannot negate {}",
                                other.type_name()
                            )));
                        }
                    }
                }
                Op::Not => {
                    let a = pop!();
                    stack.push(Value::Bool(!a.truthy()));
                }
                Op::Jump(t) => frame.ip = t as usize,
                Op::JumpIfFalse(t) => {
                    if !pop!().truthy() {
                        frame.ip = t as usize;
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    let v = *stack.last().expect("operand present");
                    if !v.truthy() {
                        frame.ip = t as usize;
                    } else {
                        stack.pop();
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    let v = *stack.last().expect("operand present");
                    if v.truthy() {
                        frame.ip = t as usize;
                    } else {
                        stack.pop();
                    }
                }
                Op::Pop => {
                    pop!();
                }
                Op::Dup => {
                    let v = *stack.last().expect("operand present");
                    stack.push(v);
                }
                Op::SetResult => {
                    self.result = pop!();
                }
                Op::Closure(chunk_idx) => {
                    stack.push(Value::Function(prog_idx, chunk_idx));
                }
                Op::MakeArray(n) => {
                    let id = self.objects.new_array(&mut self.heap, backend)?;
                    let base = stack.len() - n as usize;
                    for (i, v) in stack.drain(base..).enumerate() {
                        self.objects
                            .set_index(&mut self.heap, backend, id, i as u64, v)?;
                    }
                    stack.push(Value::Array(id));
                }
                Op::MakeObject => {
                    let id = self.objects.new_object(&mut self.heap, backend)?;
                    stack.push(Value::Object(id));
                }
                Op::InitProp(n) => {
                    let v = pop!();
                    let Some(&Value::Object(id)) = stack.last() else {
                        self.suspended = None;
                        return Err(RuntimeError::Type("InitProp on non-object".into()));
                    };
                    let name = self.programs[prog_idx as usize].names[n as usize].clone();
                    self.objects
                        .set_prop(&mut self.heap, backend, id, &name, v)?;
                }
                Op::GetIndex => {
                    let idx = pop!();
                    let container = pop!();
                    let v = match (container, idx) {
                        (Value::Array(id), Value::Num(i)) if i >= 0.0 => {
                            self.objects.get_index(id, i as u64)
                        }
                        (Value::Object(id), Value::Str(s)) => {
                            let key = self.str_text(s).to_string();
                            self.objects.get_prop(id, &key)
                        }
                        (c, i) => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "cannot index {} with {}",
                                c.type_name(),
                                i.type_name()
                            )));
                        }
                    };
                    stack.push(v);
                }
                Op::SetIndex => {
                    let v = pop!();
                    let idx = pop!();
                    let container = pop!();
                    match (container, idx) {
                        (Value::Array(id), Value::Num(i)) if i >= 0.0 => {
                            self.objects
                                .set_index(&mut self.heap, backend, id, i as u64, v)?;
                        }
                        (Value::Object(id), Value::Str(s)) => {
                            let key = self.str_text(s).to_string();
                            self.objects
                                .set_prop(&mut self.heap, backend, id, &key, v)?;
                        }
                        (c, i) => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "cannot index-assign {} with {}",
                                c.type_name(),
                                i.type_name()
                            )));
                        }
                    }
                    stack.push(v);
                }
                Op::GetProp(n) => {
                    let container = pop!();
                    let name = &self.programs[prog_idx as usize].names[n as usize];
                    let v = match container {
                        Value::Object(id) | Value::Array(id) => self.objects.get_prop(id, name),
                        Value::Str(s) if name == "length" => Value::Num(s.len as f64),
                        other => {
                            let name = name.clone();
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "no property '{name}' on {}",
                                other.type_name()
                            )));
                        }
                    };
                    stack.push(v);
                }
                Op::SetProp(n) => {
                    let v = pop!();
                    let container = pop!();
                    let name = self.programs[prog_idx as usize].names[n as usize].clone();
                    match container {
                        Value::Object(id) => {
                            self.objects
                                .set_prop(&mut self.heap, backend, id, &name, v)?;
                        }
                        other => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "cannot set property on {}",
                                other.type_name()
                            )));
                        }
                    }
                    stack.push(v);
                }
                Op::Call(nargs) => {
                    let nargs = nargs as usize;
                    let callee_pos = stack.len() - nargs - 1;
                    let callee = stack[callee_pos];
                    match callee {
                        Value::Function(p, c) => {
                            let target = &self.programs[p as usize].chunks[c as usize];
                            let mut locals = vec![Value::Null; target.num_locals as usize];
                            let args: Vec<Value> = stack.drain(callee_pos + 1..).collect();
                            stack.pop(); // callee
                            for (i, a) in args.iter().take(target.num_params as usize).enumerate() {
                                locals[i] = *a;
                            }
                            frames.push(Frame {
                                prog: p,
                                chunk: c,
                                ip: 0,
                                locals,
                            });
                            continue 'outer;
                        }
                        Value::Builtin(b) => {
                            let args: Vec<Value> = stack.drain(callee_pos + 1..).collect();
                            stack.pop(); // callee
                            match self.builtin(backend, b, &args)? {
                                BuiltinResult::Value(v) => stack.push(v),
                                BuiltinResult::Block(call) => {
                                    suspend!(VmExit::Blocked(call), true);
                                }
                            }
                        }
                        other => {
                            self.suspended = None;
                            return Err(RuntimeError::Type(format!(
                                "cannot call {}",
                                other.type_name()
                            )));
                        }
                    }
                }
                Op::Return => {
                    let v = pop!();
                    frames.pop();
                    stack.push(v);
                    if frames.is_empty() {
                        // For run_main the interesting value is the result
                        // register; for call_global it is the return value.
                        let ret = stack.pop().expect("just pushed");
                        let v = if matches!(ret, Value::Null) {
                            self.result
                        } else {
                            ret
                        };
                        return Ok(VmExit::Done(v));
                    }
                }
            }
        }
    }

    fn builtin(
        &mut self,
        backend: &mut dyn HeapBackend,
        idx: u32,
        args: &[Value],
    ) -> Result<BuiltinResult, RuntimeError> {
        let num = |v: &Value| -> f64 {
            match v {
                Value::Num(n) => *n,
                Value::Bool(true) => 1.0,
                _ => 0.0,
            }
        };
        let v = match idx {
            0 => Value::Null, // console.log: rendering cost only
            1 => {
                // spin(n): consume n virtual cycles of CPU.
                let n = args.first().map(num).unwrap_or(0.0).max(0.0);
                self.cycles += n as u64;
                Value::Null
            }
            2 => {
                let url = match args.first() {
                    Some(Value::Str(s)) => self.str_text(*s).to_string(),
                    _ => String::new(),
                };
                return Ok(BuiltinResult::Block(HostCall::HttpGet(url)));
            }
            3 => match args.first() {
                Some(Value::Array(id)) => Value::Num(self.objects.array_len(*id) as f64),
                Some(Value::Str(s)) => Value::Num(s.len as f64),
                Some(Value::Object(id)) => Value::Num(self.objects.prop_count(*id) as f64),
                _ => Value::Num(0.0),
            },
            4 => {
                let s = args.first().map(|v| self.display(*v)).unwrap_or_default();
                Value::Str(self.intern(backend, &s)?)
            }
            5 => match args.first() {
                Some(Value::Str(s)) => {
                    Value::Num(self.str_text(*s).trim().parse::<f64>().unwrap_or(f64::NAN))
                }
                Some(v) => Value::Num(num(v)),
                None => Value::Num(f64::NAN),
            },
            6 => match args.first() {
                Some(Value::Array(id)) => {
                    let v = args.get(1).copied().unwrap_or(Value::Null);
                    Value::Num(self.objects.push(&mut self.heap, backend, *id, v)? as f64)
                }
                _ => return Err(RuntimeError::Type("push expects an array".into())),
            },
            7 => Value::Num(args.first().map(num).unwrap_or(0.0).floor()),
            8 => Value::Num(args.first().map(num).unwrap_or(0.0).sqrt()),
            9 => Value::Num(args.first().map(num).unwrap_or(0.0).abs()),
            10 => Value::Num(args.iter().map(num).fold(f64::NEG_INFINITY, f64::max)),
            11 => Value::Num(args.iter().map(num).fold(f64::INFINITY, f64::min)),
            12 => Value::Num(self.next_random()),
            13 => {
                // alloc_bytes(n): raw committed allocation (memory-stress
                // workloads).
                let n = args.first().map(num).unwrap_or(0.0).max(0.0) as u64;
                let addr = self.heap.alloc_committed(backend, n)?;
                Value::Num(addr as f64)
            }
            14 => {
                let s = self.to_json(args.first().copied().unwrap_or(Value::Null), 0);
                Value::Str(self.intern(backend, &s)?)
            }
            15 => match args.first() {
                Some(Value::Object(id)) => {
                    let keys = self.objects.prop_keys(*id);
                    let arr = self.objects.new_array(&mut self.heap, backend)?;
                    for (i, k) in keys.iter().enumerate() {
                        let v = Value::Str(self.intern(backend, k)?);
                        self.objects
                            .set_index(&mut self.heap, backend, arr, i as u64, v)?;
                    }
                    Value::Array(arr)
                }
                _ => Value::Null,
            },
            16 => match args.first() {
                Some(Value::Str(r)) => {
                    let text = self.str_text(*r).to_string();
                    let a = (args.get(1).map(num).unwrap_or(0.0).max(0.0) as usize).min(text.len());
                    let b = (args.get(2).map(num).unwrap_or(text.len() as f64).max(0.0) as usize)
                        .clamp(a, text.len());
                    // Clamp to char boundaries for non-ASCII safety.
                    let a = (a..=text.len())
                        .find(|&i| text.is_char_boundary(i))
                        .unwrap_or(0);
                    let b = (b..=text.len())
                        .find(|&i| text.is_char_boundary(i))
                        .unwrap_or(text.len());
                    Value::Str(self.intern(backend, &text[a..b])?)
                }
                _ => Value::Null,
            },
            17 | 18 => match args.first() {
                Some(Value::Str(r)) => {
                    let text = self.str_text(*r);
                    let out = if idx == 17 {
                        text.to_uppercase()
                    } else {
                        text.to_lowercase()
                    };
                    Value::Str(self.intern(backend, &out)?)
                }
                _ => Value::Null,
            },
            19 => match (args.first(), args.get(1)) {
                (Some(Value::Str(h)), Some(Value::Str(n))) => {
                    let hay = self.str_text(*h).to_string();
                    Value::Bool(hay.contains(self.str_text(*n)))
                }
                _ => Value::Bool(false),
            },
            _ => Value::Null,
        };
        Ok(BuiltinResult::Value(v))
    }
}

enum BuiltinResult {
    Value(Value),
    Block(HostCall),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HostHeap;

    fn run(src: &str) -> Value {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp.load_source(&mut backend, src).unwrap();
        match interp.run_main(&mut backend, prog, u64::MAX).unwrap() {
            VmExit::Done(v) => v,
            other => panic!("unexpected exit {other:?}"),
        }
    }

    fn run_str(src: &str) -> String {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp.load_source(&mut backend, src).unwrap();
        match interp.run_main(&mut backend, prog, u64::MAX).unwrap() {
            VmExit::Done(v) => interp.display(v),
            other => panic!("unexpected exit {other:?}"),
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("1 + 2 * 3 - 4 / 2;"), Value::Num(5.0));
        assert_eq!(run("7 % 3;"), Value::Num(1.0));
        assert_eq!(run("-(2 + 3);"), Value::Num(-5.0));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("1 < 2;"), Value::Bool(true));
        assert_eq!(run("2 <= 1;"), Value::Bool(false));
        assert_eq!(run("1 == 1 && 2 != 3;"), Value::Bool(true));
        assert_eq!(run("false || true;"), Value::Bool(true));
        assert_eq!(run("!false;"), Value::Bool(true));
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // RHS would be an undefined-variable error if evaluated.
        assert_eq!(run("false && nope;"), Value::Bool(false));
        assert_eq!(run("true || nope;"), Value::Bool(true));
    }

    #[test]
    fn globals_and_assignment() {
        assert_eq!(run("let x = 10; x = x + 5; x;"), Value::Num(15.0));
        assert_eq!(
            run("let x = 10; x += 5; x *= 2; x -= 3; x;"),
            Value::Num(27.0)
        );
        assert_eq!(run("let a = [5]; a[0] += 2; a[0];"), Value::Num(7.0));
        assert_eq!(run("let o = { n: 1 }; o.n += 41; o.n;"), Value::Num(42.0));
    }

    #[test]
    fn while_loop_sums() {
        assert_eq!(
            run("let s = 0; let i = 1; while (i <= 10) { s = s + i; i = i + 1; } s;"),
            Value::Num(55.0)
        );
    }

    #[test]
    fn for_loop_desugar_runs() {
        assert_eq!(
            run("let s = 0; for (let i = 0; i < 5; i = i + 1) { s = s + i; } s;"),
            Value::Num(10.0)
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            run("let s = 0; let i = 0; while (true) { i = i + 1; if (i > 10) { break; } if (i % 2 == 0) { continue; } s = s + i; } s;"),
            Value::Num(25.0)
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            run(
                "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } fib(10);"
            ),
            Value::Num(55.0)
        );
    }

    #[test]
    fn function_locals_are_scoped() {
        assert_eq!(
            run("let x = 1; function f() { let x = 99; return x; } f() + x;"),
            Value::Num(100.0)
        );
    }

    #[test]
    fn strings_concat_and_compare() {
        assert_eq!(run_str("'ab' + 'cd';"), "abcd");
        assert_eq!(run_str("'a' + 1;"), "a1");
        assert_eq!(run_str("1 + 'a';"), "1a");
    }

    #[test]
    fn string_eq_by_content() {
        assert_eq!(run("'abc' == 'ab' + 'c';"), Value::Bool(true));
        assert_eq!(run("'abc' != 'abd';"), Value::Bool(true));
        assert_eq!(run("'a' < 'b';"), Value::Bool(true));
    }

    #[test]
    fn arrays_and_objects() {
        assert_eq!(run("let a = [1, 2, 3]; a[1];"), Value::Num(2.0));
        assert_eq!(run("let a = [1]; a[0] = 9; a[0];"), Value::Num(9.0));
        assert_eq!(run("let a = [1, 2]; a.length;"), Value::Num(2.0));
        assert_eq!(run("let o = { x: 4 }; o.x;"), Value::Num(4.0));
        assert_eq!(
            run("let o = { x: 4 }; o.y = 6; o.x + o.y;"),
            Value::Num(10.0)
        );
        assert_eq!(run("let o = { a: 1 }; o['a'];"), Value::Num(1.0));
    }

    #[test]
    fn builtins_work() {
        assert_eq!(run("len([1, 2, 3]);"), Value::Num(3.0));
        assert_eq!(run("Math.floor(2.9);"), Value::Num(2.0));
        assert_eq!(run("Math.sqrt(49);"), Value::Num(7.0));
        assert_eq!(run("Math.max(1, 5, 3);"), Value::Num(5.0));
        assert_eq!(run("num('42');"), Value::Num(42.0));
        assert_eq!(run_str("str(12);"), "12");
        assert_eq!(run("let a = []; push(a, 7); a[0];"), Value::Num(7.0));
    }

    #[test]
    fn console_log_is_callable() {
        assert_eq!(run("console.log('hi'); 1;"), Value::Num(1.0));
    }

    #[test]
    fn spin_consumes_cycles() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp
            .load_source(&mut backend, "spin(100000); 1;")
            .unwrap();
        let before = interp.cycles();
        interp.run_main(&mut backend, prog, u64::MAX).unwrap();
        assert!(interp.cycles() - before >= 100_000);
    }

    #[test]
    fn http_get_blocks_and_resumes() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp
            .load_source(&mut backend, "let r = http_get('http://x/y'); r + '!';")
            .unwrap();
        match interp.run_main(&mut backend, prog, u64::MAX).unwrap() {
            VmExit::Blocked(HostCall::HttpGet(url)) => assert_eq!(url, "http://x/y"),
            other => panic!("{other:?}"),
        }
        assert!(interp.is_suspended());
        let ok = interp.make_str(&mut backend, "OK").unwrap();
        match interp.resume(&mut backend, ok, u64::MAX).unwrap() {
            VmExit::Done(v) => assert_eq!(interp.display(v), "OK!"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_suspends_and_resumes() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp
            .load_source(
                &mut backend,
                "let s = 0; let i = 0; while (i < 1000) { s = s + i; i = i + 1; } s;",
            )
            .unwrap();
        let mut exit = interp.run_main(&mut backend, prog, 100).unwrap();
        let mut rounds = 0;
        while exit == VmExit::OutOfFuel {
            exit = interp.resume(&mut backend, Value::Null, 500).unwrap();
            rounds += 1;
            assert!(rounds < 100, "stuck");
        }
        match exit {
            VmExit::Done(v) => assert_eq!(v, Value::Num(499_500.0)),
            other => panic!("{other:?}"),
        }
        assert!(rounds > 1);
    }

    #[test]
    fn call_global_invokes_function() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp
            .load_source(&mut backend, "function main(a, b) { return a * b; }")
            .unwrap();
        interp.run_main(&mut backend, prog, u64::MAX).unwrap();
        let exit = interp
            .call_global(
                &mut backend,
                "main",
                &[Value::Num(6.0), Value::Num(7.0)],
                u64::MAX,
            )
            .unwrap();
        assert_eq!(exit, VmExit::Done(Value::Num(42.0)));
    }

    #[test]
    fn call_global_missing_is_error() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        assert_eq!(
            interp.call_global(&mut backend, "nope", &[], u64::MAX),
            Err(RuntimeError::NotCallable("nope".into()))
        );
    }

    #[test]
    fn undefined_variable_is_error() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp.load_source(&mut backend, "ghost + 1;").unwrap();
        assert_eq!(
            interp.run_main(&mut backend, prog, u64::MAX),
            Err(RuntimeError::Undefined("ghost".into()))
        );
    }

    #[test]
    fn type_errors_reported() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp.load_source(&mut backend, "null * 2;").unwrap();
        assert!(matches!(
            interp.run_main(&mut backend, prog, u64::MAX),
            Err(RuntimeError::Type(_))
        ));
    }

    #[test]
    fn first_compile_latch_fires_once() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        assert!(!interp.warmed_compile());
        interp.load_source(&mut backend, "1;").unwrap();
        assert!(interp.warmed_compile());
        let allocs_after_first = interp.heap_stats().bytes_allocated;
        interp.load_source(&mut backend, "2;").unwrap();
        let second_cost = interp.heap_stats().bytes_allocated - allocs_after_first;
        // The second compile skips first_compile_extra_bytes.
        assert!(second_cost < allocs_after_first);
    }

    #[test]
    fn globals_persist_across_programs() {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let p1 = interp.load_source(&mut backend, "let shared = 5;").unwrap();
        interp.run_main(&mut backend, p1, u64::MAX).unwrap();
        let p2 = interp.load_source(&mut backend, "shared + 1;").unwrap();
        match interp.run_main(&mut backend, p2, u64::MAX).unwrap() {
            VmExit::Done(v) => assert_eq!(v, Value::Num(6.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn math_random_is_deterministic() {
        let a = run_str("str(Math.random());");
        let b = run_str("str(Math.random());");
        assert_eq!(a, b, "fresh interpreters with same seed agree");
    }

    #[test]
    fn fib_nested_calls_deep() {
        assert_eq!(
            run("function f(n) { if (n == 0) { return 0; } return f(n - 1) + 1; } f(200);"),
            Value::Num(200.0)
        );
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;
    use crate::heap::HostHeap;

    fn run_str(src: &str) -> String {
        let mut backend = HostHeap::with_capacity(8 << 20);
        let mut interp = Interpreter::new(RuntimeProfile::tiny());
        let prog = interp.load_source(&mut backend, src).unwrap();
        match interp.run_main(&mut backend, prog, u64::MAX).unwrap() {
            VmExit::Done(v) => interp.display(v),
            other => panic!("unexpected exit {other:?}"),
        }
    }

    #[test]
    fn json_serializes_nested_values() {
        assert_eq!(run_str("json(42);"), "42");
        assert_eq!(run_str("json('hi');"), "\"hi\"");
        assert_eq!(
            run_str("json([1, 'a', true, null]);"),
            "[1,\"a\",true,null]"
        );
        assert_eq!(
            run_str("json({ b: 2, a: [1, { c: 'x' }] });"),
            "{\"a\":[1,{\"c\":\"x\"}],\"b\":2}"
        );
    }

    #[test]
    fn keys_lists_properties() {
        assert_eq!(run_str("len(keys({ a: 1, b: 2, c: 3 }));"), "3");
        assert_eq!(run_str("len(keys([1, 2]));"), "0");
    }

    #[test]
    fn string_builtins() {
        assert_eq!(run_str("substr('serverless', 0, 6);"), "server");
        assert_eq!(run_str("substr('abc', 1);"), "bc");
        assert_eq!(run_str("upper('Seuss');"), "SEUSS");
        assert_eq!(run_str("lower('SeUsS');"), "seuss");
        assert_eq!(run_str("str(contains('snapshot', 'shot'));"), "true");
        assert_eq!(run_str("str(contains('snapshot', 'fork'));"), "false");
    }

    #[test]
    fn substr_out_of_range_clamps() {
        assert_eq!(run_str("substr('ab', 5, 9);"), "");
        assert_eq!(run_str("substr('ab', 0, 99);"), "ab");
    }

    #[test]
    fn pipeline_style_composition() {
        // Output of one stage feeds the next as JSON — the composed-
        // function pattern the paper's intro motivates.
        let src = r#"
            function extract(args) { return { user: args.user, n: num(args.n) }; }
            function transform(rec) { rec.n = rec.n * 2; rec.user = upper(rec.user); return rec; }
            json(transform(extract({ user: 'ada', n: '21' })));
        "#;
        assert_eq!(run_str(src), "{\"n\":42,\"user\":\"ADA\"}");
    }
}
