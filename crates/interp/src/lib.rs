//! `miniscript` — a small JavaScript-like interpreter whose memory lives
//! in a pluggable backing store.
//!
//! SEUSS runs real language runtimes (Node.js, Python) inside unikernel
//! contexts; what matters to the system is *where the runtime's memory
//! traffic lands*: importing and compiling a function dirties pages, lazy
//! runtime initialization dirties pages on first use, and anticipatory
//! optimization works precisely because a dummy pre-execution moves those
//! first-use pages into the shared base snapshot (§3, §7).
//!
//! `miniscript` reproduces that mechanically. It is a complete pipeline —
//! lexer → Pratt parser → bytecode compiler → stack VM — whose
//! allocations (string interning, object backing stores, compile arenas,
//! lazily-initialized runtime subsystems) are committed through a
//! [`HeapBackend`] trait. The unikernel crate implements `HeapBackend` on
//! top of a UC's address space, so running a script genuinely writes
//! guest pages and the paging crate's dirty tracking sees real traffic.
//!
//! The language covers what the paper's workloads need: numbers, strings,
//! booleans, `let`/assignment, arithmetic/comparison/logic, `if`/`else`,
//! `while`/`for`, function declarations and calls (with recursion),
//! arrays, objects, and host builtins including `spin(cycles)` for
//! CPU-bound work and `http_get(url)` which *suspends the VM* so the
//! discrete-event simulation can model blocking external IO.
//!
//! # Examples
//!
//! ```
//! use miniscript::{HostHeap, Interpreter, RuntimeProfile, Value, VmExit};
//!
//! let mut heap = HostHeap::with_capacity(8 << 20);
//! let mut interp = Interpreter::new(RuntimeProfile::tiny());
//! let prog = interp
//!     .load_source(&mut heap, "function add(a, b) { return a + b; } add(2, 40);")
//!     .unwrap();
//! match interp.run_main(&mut heap, prog, u64::MAX).unwrap() {
//!     VmExit::Done(Value::Num(n)) => assert_eq!(n, 42.0),
//!     other => panic!("unexpected exit: {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod heap;
pub mod lexer;
pub mod parser;
pub mod profile;
pub mod value;
pub mod vm;

pub use compile::{compile, CompileError};
pub use heap::{BumpHeap, HeapBackend, HeapError, HeapStats, HostHeap};
pub use profile::RuntimeProfile;
pub use value::{ObjStore, StrRef, Value};
pub use vm::{HostCall, Interpreter, LoadError, ProgId, RuntimeError, VmExit};
