//! Runtime sizing and cost profile.
//!
//! `miniscript` is a small interpreter standing in for Node.js/V8, so the
//! raw magnitude of its allocations and work would be orders of magnitude
//! below a real managed runtime. This profile carries the *calibrated
//! magnitudes* of the stand-in: how many bytes a compile commits, how much
//! lazily-initialized runtime state materializes on the first compile and
//! first execution, and how many virtual CPU cycles those steps cost.
//! All mechanism (which pages get dirtied, when lazy init fires, what AO
//! moves into the base snapshot) is real; only the constants are scaled to
//! the paper's Node.js measurements.
//!
//! Calibration targets (paper §7, Tables 1–2). Solving the six cells of
//! Table 2 for the latched one-time costs gives an exact decomposition:
//! cold = base(7.5) + net-first-use(N) + first-compile(C₁) + driver-first-
//! request(D) + first-exec(E); warm = base(3.5) + D + E, with network AO
//! latching N and D, and interpreter AO latching C₁ and E. The unique
//! solution is N = 23.1 ms, D = 2.1 ms, C₁ = 7.3 ms, E = 2.0 ms — C₁ and
//! E live here; N and D live in `seuss-unikernel::UcProfile`.
//!
//! Memory targets: the post-AO NOP snapshot is 2.0 MiB = driver-resume
//! dirt (≈1.36 MiB, in UcProfile) + per-compile commit (≈0.65 MiB here);
//! pre-AO it is 4.8 MiB, so first-compile state is ≈2.8 MiB. Both AOs
//! together grow the base snapshot by 4.9 MiB = 2.8 (first compile) +
//! 0.8 (first exec) + 0.65 (dummy compile) + ≈0.65 (net + driver, in
//! UcProfile).

/// Sizing/cost constants for the simulated managed runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeProfile {
    /// First valid heap address handed to the bump allocator.
    pub heap_base: u64,
    /// Heap region size in bytes.
    pub heap_size: u64,
    /// Fixed bytes committed per compile (code space, IC tables, maps).
    pub per_compile_fixed_bytes: u64,
    /// Additional committed bytes per source byte.
    pub per_compile_bytes_per_src_byte: u64,
    /// One-time bytes committed on the very first compile (parser arenas,
    /// compiler scratch, builtin code stubs) — what interpreter AO hoists
    /// into the base snapshot.
    pub first_compile_extra_bytes: u64,
    /// One-time bytes committed on the very first execution (builtin
    /// objects, inline caches, hidden-class transitions).
    pub first_exec_extra_bytes: u64,
    /// Virtual cycles per compile, fixed part (1 cycle ≈ 1 ns).
    pub compile_cycles_fixed: u64,
    /// Virtual cycles per compiled source byte.
    pub compile_cycles_per_src_byte: u64,
    /// One-time cycles on first compile.
    pub first_compile_extra_cycles: u64,
    /// One-time cycles on first execution.
    pub first_exec_extra_cycles: u64,
}

impl RuntimeProfile {
    /// Profile calibrated to the paper's Node.js measurements.
    pub fn nodejs() -> Self {
        RuntimeProfile {
            heap_base: 0x1000,
            heap_size: 512 << 20,
            per_compile_fixed_bytes: 650_000,
            per_compile_bytes_per_src_byte: 48,
            first_compile_extra_bytes: 2_800_000,
            first_exec_extra_bytes: 800_000,
            compile_cycles_fixed: 3_600_000,
            compile_cycles_per_src_byte: 2_000,
            first_compile_extra_cycles: 7_300_000,
            first_exec_extra_cycles: 2_000_000,
        }
    }

    /// Profile calibrated to CPython (used by the Python runtime variant;
    /// smaller code caches, slower per-byte compile).
    pub fn python() -> Self {
        RuntimeProfile {
            heap_base: 0x1000,
            heap_size: 256 << 20,
            per_compile_fixed_bytes: 600_000,
            per_compile_bytes_per_src_byte: 24,
            first_compile_extra_bytes: 1_200_000,
            first_exec_extra_bytes: 900_000,
            compile_cycles_fixed: 2_500_000,
            compile_cycles_per_src_byte: 3_500,
            first_compile_extra_cycles: 3_000_000,
            first_exec_extra_cycles: 2_500_000,
        }
    }

    /// Minimal profile for unit tests: no lazy-init bloat, tiny costs.
    pub fn tiny() -> Self {
        RuntimeProfile {
            heap_base: 0x1000,
            heap_size: 4 << 20,
            per_compile_fixed_bytes: 256,
            per_compile_bytes_per_src_byte: 1,
            first_compile_extra_bytes: 512,
            first_exec_extra_bytes: 256,
            compile_cycles_fixed: 100,
            compile_cycles_per_src_byte: 1,
            first_compile_extra_cycles: 50,
            first_exec_extra_cycles: 50,
        }
    }
}

impl Default for RuntimeProfile {
    fn default() -> Self {
        RuntimeProfile::tiny()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodejs_calibration_matches_paper_deltas() {
        let p = RuntimeProfile::nodejs();
        // Per-compile commit ≈ 0.65 MiB; first-compile state ≈ 2.8 MiB,
        // so the pre-AO vs post-AO NOP-snapshot delta matches the paper.
        let per_compile = p.per_compile_fixed_bytes as f64 / (1024.0 * 1024.0);
        let first = p.first_compile_extra_bytes as f64 / (1024.0 * 1024.0);
        assert!((0.5..0.8).contains(&per_compile), "{per_compile}");
        assert!((2.6..3.0).contains(&first), "{first}");
        // The interpreter-AO cycle pools remove C₁ + E = 9.3 ms.
        let ao_ms = (p.first_compile_extra_cycles + p.first_exec_extra_cycles) as f64 / 1e6;
        assert!((9.0..9.6).contains(&ao_ms), "{ao_ms}");
        // Compile of a NOP ≈ 3.6 ms fixed + capture/deploy ≈ the 4 ms
        // cold-minus-warm gap of Table 1.
        assert!((3.0..4.2).contains(&(p.compile_cycles_fixed as f64 / 1e6)));
    }
}
