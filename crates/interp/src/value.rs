//! Runtime values and the host-side object store.
//!
//! Value payloads live in two places, mirroring how a real runtime works
//! against the simulation: *semantics* (property maps, array element
//! vectors) are host-side for speed, while every mutation also writes to a
//! guest-heap backing allocation so the page-level memory traffic is real.

use std::collections::HashMap;

use crate::heap::{BumpHeap, HeapBackend, HeapError};

/// Reference to an interned string: guest address + length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StrRef {
    /// Guest heap address of the bytes.
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
}

/// Index into the [`ObjStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

/// A miniscript value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// IEEE-754 number (the only numeric type, like JavaScript).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null / undefined.
    Null,
    /// Interned string.
    Str(StrRef),
    /// Array object.
    Array(ObjId),
    /// Plain object.
    Object(ObjId),
    /// User function: (program index, chunk index).
    Function(u32, u32),
    /// Builtin function by table index.
    Builtin(u32),
}

impl Value {
    /// JavaScript-style truthiness.
    pub fn truthy(self) -> bool {
        match self {
            Value::Num(n) => n != 0.0 && !n.is_nan(),
            Value::Bool(b) => b,
            Value::Null => false,
            Value::Str(s) => s.len > 0,
            Value::Array(_) | Value::Object(_) | Value::Function(..) | Value::Builtin(_) => true,
        }
    }

    /// Human-readable type name for error messages.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Null => "null",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
            Value::Function(..) => "function",
            Value::Builtin(_) => "builtin",
        }
    }
}

/// Bytes each stored property/element costs in guest backing memory.
const SLOT_BYTES: u64 = 16;
/// Initial backing capacity, in slots.
const INITIAL_SLOTS: u64 = 4;

#[derive(Clone)]
enum ObjData {
    Object {
        props: HashMap<String, Value>,
        backing: u64,
        cap_slots: u64,
    },
    Array {
        items: Vec<Value>,
        backing: u64,
        cap_slots: u64,
    },
}

/// Host-side store of arrays and objects, with guest backing traffic.
#[derive(Clone, Default)]
pub struct ObjStore {
    objs: Vec<ObjData>,
}

impl ObjStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjStore::default()
    }

    /// Number of live objects (objects live for the runtime's lifetime).
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Allocates an empty object.
    pub fn new_object(
        &mut self,
        heap: &mut BumpHeap,
        backend: &mut dyn HeapBackend,
    ) -> Result<ObjId, HeapError> {
        let backing = heap.alloc(INITIAL_SLOTS * SLOT_BYTES)?;
        backend.write(backing, &0u64.to_le_bytes())?;
        self.objs.push(ObjData::Object {
            props: HashMap::new(),
            backing,
            cap_slots: INITIAL_SLOTS,
        });
        Ok(ObjId(self.objs.len() as u32 - 1))
    }

    /// Allocates an empty array.
    pub fn new_array(
        &mut self,
        heap: &mut BumpHeap,
        backend: &mut dyn HeapBackend,
    ) -> Result<ObjId, HeapError> {
        let backing = heap.alloc(INITIAL_SLOTS * SLOT_BYTES)?;
        backend.write(backing, &0u64.to_le_bytes())?;
        self.objs.push(ObjData::Array {
            items: Vec::new(),
            backing,
            cap_slots: INITIAL_SLOTS,
        });
        Ok(ObjId(self.objs.len() as u32 - 1))
    }

    fn grow_if_needed(
        heap: &mut BumpHeap,
        backend: &mut dyn HeapBackend,
        backing: &mut u64,
        cap_slots: &mut u64,
        needed_slots: u64,
    ) -> Result<(), HeapError> {
        if needed_slots <= *cap_slots {
            return Ok(());
        }
        let mut new_cap = *cap_slots * 2;
        while new_cap < needed_slots {
            new_cap *= 2;
        }
        // A real runtime memcpys the old slots into the new backing; model
        // the writes.
        let new_backing = heap.alloc(new_cap * SLOT_BYTES)?;
        let copy = vec![0u8; (*cap_slots * SLOT_BYTES) as usize];
        backend.write(new_backing, &copy)?;
        *backing = new_backing;
        *cap_slots = new_cap;
        Ok(())
    }

    fn write_slot(
        backend: &mut dyn HeapBackend,
        backing: u64,
        slot: u64,
        value: Value,
    ) -> Result<(), HeapError> {
        // A tag word and a payload word, like a boxed slot.
        let payload: u64 = match value {
            Value::Num(n) => n.to_bits(),
            Value::Bool(b) => b as u64,
            Value::Null => 0,
            Value::Str(s) => s.addr,
            Value::Array(o) | Value::Object(o) => o.0 as u64,
            Value::Function(p, c) => ((p as u64) << 32) | c as u64,
            Value::Builtin(i) => i as u64,
        };
        backend.write(backing + slot * SLOT_BYTES, &payload.to_le_bytes())?;
        backend.write(backing + slot * SLOT_BYTES + 8, &1u64.to_le_bytes())
    }

    /// Sets an object property.
    pub fn set_prop(
        &mut self,
        heap: &mut BumpHeap,
        backend: &mut dyn HeapBackend,
        id: ObjId,
        key: &str,
        value: Value,
    ) -> Result<(), HeapError> {
        match &mut self.objs[id.0 as usize] {
            ObjData::Object {
                props,
                backing,
                cap_slots,
            } => {
                let is_new = !props.contains_key(key);
                let slot = if is_new { props.len() as u64 } else { 0 };
                if is_new {
                    Self::grow_if_needed(heap, backend, backing, cap_slots, slot + 1)?;
                }
                Self::write_slot(backend, *backing, slot.min(*cap_slots - 1), value)?;
                props.insert(key.to_string(), value);
                Ok(())
            }
            ObjData::Array { .. } => Err(HeapError::BackendFault),
        }
    }

    /// Gets an object property (`Null` when absent, like JS `undefined`).
    pub fn get_prop(&self, id: ObjId, key: &str) -> Value {
        match &self.objs[id.0 as usize] {
            ObjData::Object { props, .. } => props.get(key).copied().unwrap_or(Value::Null),
            ObjData::Array { items, .. } => {
                if key == "length" {
                    Value::Num(items.len() as f64)
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Sets an array element, extending with nulls if needed.
    pub fn set_index(
        &mut self,
        heap: &mut BumpHeap,
        backend: &mut dyn HeapBackend,
        id: ObjId,
        index: u64,
        value: Value,
    ) -> Result<(), HeapError> {
        match &mut self.objs[id.0 as usize] {
            ObjData::Array {
                items,
                backing,
                cap_slots,
            } => {
                Self::grow_if_needed(heap, backend, backing, cap_slots, index + 1)?;
                if items.len() as u64 <= index {
                    items.resize(index as usize + 1, Value::Null);
                }
                items[index as usize] = value;
                Self::write_slot(backend, *backing, index, value)
            }
            ObjData::Object { .. } => Err(HeapError::BackendFault),
        }
    }

    /// Gets an array element (`Null` out of range).
    pub fn get_index(&self, id: ObjId, index: u64) -> Value {
        match &self.objs[id.0 as usize] {
            ObjData::Array { items, .. } => {
                items.get(index as usize).copied().unwrap_or(Value::Null)
            }
            ObjData::Object { .. } => Value::Null,
        }
    }

    /// Appends to an array, returning the new length.
    pub fn push(
        &mut self,
        heap: &mut BumpHeap,
        backend: &mut dyn HeapBackend,
        id: ObjId,
        value: Value,
    ) -> Result<u64, HeapError> {
        let len = self.array_len(id);
        self.set_index(heap, backend, id, len, value)?;
        Ok(len + 1)
    }

    /// Length of an array (0 for non-arrays).
    pub fn array_len(&self, id: ObjId) -> u64 {
        match &self.objs[id.0 as usize] {
            ObjData::Array { items, .. } => items.len() as u64,
            ObjData::Object { .. } => 0,
        }
    }

    /// Relocates every object's backing allocation to fresh heap
    /// addresses, rewriting all slots — the copy phase of a moving
    /// (semispace) garbage collector. Returns `(objects moved, bytes
    /// rewritten)`.
    ///
    /// This exists to study the paper's stated future work ("the runtime
    /// effects of COW on a complex function workload"): a moving GC
    /// rewrites pages wholesale, which after a snapshot translates into
    /// COW breaks and bloated function-snapshot diffs.
    pub fn compact(
        &mut self,
        heap: &mut BumpHeap,
        backend: &mut dyn HeapBackend,
    ) -> Result<(u64, u64), HeapError> {
        let mut moved = 0u64;
        let mut bytes = 0u64;
        for idx in 0..self.objs.len() {
            let (cap, values): (u64, Vec<Value>) = match &self.objs[idx] {
                ObjData::Object {
                    props, cap_slots, ..
                } => (*cap_slots, props.values().copied().collect()),
                ObjData::Array {
                    items, cap_slots, ..
                } => (*cap_slots, items.clone()),
            };
            let new_backing = heap.alloc(cap * SLOT_BYTES)?;
            for (slot, v) in values.iter().enumerate() {
                Self::write_slot(backend, new_backing, slot as u64, *v)?;
            }
            match &mut self.objs[idx] {
                ObjData::Object { backing, .. } | ObjData::Array { backing, .. } => {
                    *backing = new_backing;
                }
            }
            moved += 1;
            bytes += cap * SLOT_BYTES;
        }
        Ok((moved, bytes))
    }

    /// Property names of an object (empty for arrays), unordered.
    pub fn prop_keys(&self, id: ObjId) -> Vec<String> {
        match &self.objs[id.0 as usize] {
            ObjData::Object { props, .. } => props.keys().cloned().collect(),
            ObjData::Array { .. } => Vec::new(),
        }
    }

    /// Number of properties on an object (0 for arrays).
    pub fn prop_count(&self, id: ObjId) -> u64 {
        match &self.objs[id.0 as usize] {
            ObjData::Object { props, .. } => props.len() as u64,
            ObjData::Array { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HostHeap;

    fn rig() -> (HostHeap, BumpHeap, ObjStore) {
        let backend = HostHeap::with_capacity(1 << 20);
        let heap = BumpHeap::new(backend.base(), 1 << 20);
        (backend, heap, ObjStore::new())
    }

    #[test]
    fn truthiness_follows_js() {
        assert!(!Value::Num(0.0).truthy());
        assert!(Value::Num(1.0).truthy());
        assert!(!Value::Num(f64::NAN).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Str(StrRef { addr: 0, len: 0 }).truthy());
        assert!(Value::Str(StrRef { addr: 0, len: 1 }).truthy());
    }

    #[test]
    fn object_props_round_trip() {
        let (mut b, mut h, mut store) = rig();
        let o = store.new_object(&mut h, &mut b).unwrap();
        assert_eq!(store.get_prop(o, "x"), Value::Null);
        store
            .set_prop(&mut h, &mut b, o, "x", Value::Num(5.0))
            .unwrap();
        assert_eq!(store.get_prop(o, "x"), Value::Num(5.0));
        store
            .set_prop(&mut h, &mut b, o, "x", Value::Num(6.0))
            .unwrap();
        assert_eq!(store.get_prop(o, "x"), Value::Num(6.0));
        assert_eq!(store.prop_count(o), 1);
    }

    #[test]
    fn array_elements_and_length() {
        let (mut b, mut h, mut store) = rig();
        let a = store.new_array(&mut h, &mut b).unwrap();
        store.push(&mut h, &mut b, a, Value::Num(1.0)).unwrap();
        store.push(&mut h, &mut b, a, Value::Num(2.0)).unwrap();
        assert_eq!(store.array_len(a), 2);
        assert_eq!(store.get_index(a, 1), Value::Num(2.0));
        assert_eq!(store.get_index(a, 9), Value::Null);
        assert_eq!(store.get_prop(a, "length"), Value::Num(2.0));
    }

    #[test]
    fn sparse_set_extends_with_nulls() {
        let (mut b, mut h, mut store) = rig();
        let a = store.new_array(&mut h, &mut b).unwrap();
        store
            .set_index(&mut h, &mut b, a, 5, Value::Bool(true))
            .unwrap();
        assert_eq!(store.array_len(a), 6);
        assert_eq!(store.get_index(a, 3), Value::Null);
    }

    #[test]
    fn growth_allocates_backing() {
        let (mut b, mut h, mut store) = rig();
        let a = store.new_array(&mut h, &mut b).unwrap();
        let before = h.stats().bytes_allocated;
        for i in 0..100 {
            store.push(&mut h, &mut b, a, Value::Num(i as f64)).unwrap();
        }
        assert!(h.stats().bytes_allocated > before, "backing regrown");
    }

    #[test]
    fn type_confusion_is_an_error() {
        let (mut b, mut h, mut store) = rig();
        let o = store.new_object(&mut h, &mut b).unwrap();
        assert!(store.set_index(&mut h, &mut b, o, 0, Value::Null).is_err());
        let a = store.new_array(&mut h, &mut b).unwrap();
        assert!(store.set_prop(&mut h, &mut b, a, "k", Value::Null).is_err());
    }
}
