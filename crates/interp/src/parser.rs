//! Recursive-descent / Pratt parser producing the [`crate::ast`] types.

use core::fmt;

use crate::ast::{BinOp, Expr, FunctionDecl, Script, Stmt, UnOp};
use crate::lexer::{lex, LexError, Token};

/// A parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Token index of the failure.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: e.at,
            msg: e.msg,
        }
    }
}

/// Parses a source string into a [`Script`].
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut stmts = Vec::new();
    while !p.check(&Token::Eof) {
        stmts.push(p.statement()?);
    }
    Ok(Script { stmts })
}

/// Maximum expression/statement nesting before the parser bails out
/// (prevents stack exhaustion on adversarial input — UCs may receive
/// arbitrary client source).
const MAX_DEPTH: u32 = 200;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn check(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.check(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err("expression nesting too deep".into()))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let s = self.statement_inner();
        self.leave();
        s
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Let => {
                self.advance();
                let name = self.ident()?;
                self.expect(&Token::Assign)?;
                let value = self.expression()?;
                self.eat(&Token::Semi);
                Ok(Stmt::Let(name, value))
            }
            Token::Function => {
                self.advance();
                let name = self.ident()?;
                self.expect(&Token::LParen)?;
                let mut params = Vec::new();
                if !self.check(&Token::RParen) {
                    loop {
                        params.push(self.ident()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::Function(FunctionDecl { name, params, body }))
            }
            Token::Return => {
                self.advance();
                if self.eat(&Token::Semi) || self.check(&Token::RBrace) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expression()?;
                    self.eat(&Token::Semi);
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Token::If => {
                self.advance();
                self.expect(&Token::LParen)?;
                let cond = self.expression()?;
                self.expect(&Token::RParen)?;
                let then = self.block_or_single()?;
                let els = if self.eat(&Token::Else) {
                    if self.check(&Token::If) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Token::While => {
                self.advance();
                self.expect(&Token::LParen)?;
                let cond = self.expression()?;
                self.expect(&Token::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While(cond, body))
            }
            Token::For => {
                // Desugar `for (init; cond; step) body` into init + while.
                self.advance();
                self.expect(&Token::LParen)?;
                let init = if self.check(&Token::Semi) {
                    None
                } else {
                    Some(self.statement()?)
                };
                self.eat(&Token::Semi);
                let cond = if self.check(&Token::Semi) {
                    Expr::Bool(true)
                } else {
                    self.expression()?
                };
                self.expect(&Token::Semi)?;
                let step = if self.check(&Token::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Token::RParen)?;
                let mut body = self.block_or_single()?;
                if let Some(step) = step {
                    body.push(Stmt::Expr(step));
                }
                let desugared = Stmt::While(cond, body);
                Ok(match init {
                    // Wrap in a synthetic block via if(true) to scope init
                    // alongside the loop; miniscript scoping is function-
                    // level so a flat sequence is equivalent.
                    Some(init) => Stmt::If(Expr::Bool(true), vec![init, desugared], Vec::new()),
                    None => desugared,
                })
            }
            Token::Break => {
                self.advance();
                self.eat(&Token::Semi);
                Ok(Stmt::Break)
            }
            Token::Continue => {
                self.advance();
                self.eat(&Token::Semi);
                Ok(Stmt::Continue)
            }
            _ => {
                let e = self.expression()?;
                self.eat(&Token::Semi);
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&Token::RBrace) {
            if self.check(&Token::Eof) {
                return Err(self.err("unterminated block".into()));
            }
            stmts.push(self.statement()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.check(&Token::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let e = self.assignment();
        self.leave();
        e
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        let compound = match self.peek() {
            Token::Assign => None,
            Token::PlusAssign => Some(BinOp::Add),
            Token::MinusAssign => Some(BinOp::Sub),
            Token::StarAssign => Some(BinOp::Mul),
            _ => return Ok(lhs),
        };
        self.advance();
        match lhs {
            Expr::Var(_) | Expr::Index(..) | Expr::Prop(..) => {
                let rhs = self.assignment()?;
                // `a op= b` desugars to `a = a op b`. For index/property
                // targets the container expression is re-evaluated, which
                // is fine for miniscript's side-effect-free l-values.
                let rhs = match compound {
                    Some(op) => Expr::Bin(op, Box::new(lhs.clone()), Box::new(rhs)),
                    None => rhs,
                };
                Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)))
            }
            _ => Err(self.err("invalid assignment target".into())),
        }
    }

    fn bin_op_of(token: &Token) -> Option<(BinOp, u8)> {
        // Precedence: higher binds tighter.
        Some(match token {
            Token::Or => (BinOp::Or, 1),
            Token::And => (BinOp::And, 2),
            Token::Eq => (BinOp::Eq, 3),
            Token::Ne => (BinOp::Ne, 3),
            Token::Lt => (BinOp::Lt, 4),
            Token::Le => (BinOp::Le, 4),
            Token::Gt => (BinOp::Gt, 4),
            Token::Ge => (BinOp::Ge, 4),
            Token::Plus => (BinOp::Add, 5),
            Token::Minus => (BinOp::Sub, 5),
            Token::Star => (BinOp::Mul, 6),
            Token::Slash => (BinOp::Div, 6),
            Token::Percent => (BinOp::Mod, 6),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let e = if self.eat(&Token::Minus) {
            self.unary().map(|e| Expr::Un(UnOp::Neg, Box::new(e)))
        } else if self.eat(&Token::Not) {
            self.unary().map(|e| Expr::Un(UnOp::Not, Box::new(e)))
        } else {
            self.postfix()
        };
        self.leave();
        e
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&Token::LParen) {
                let mut args = Vec::new();
                if !self.check(&Token::RParen) {
                    loop {
                        args.push(self.expression()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                e = Expr::Call(Box::new(e), args);
            } else if self.eat(&Token::LBracket) {
                let idx = self.expression()?;
                self.expect(&Token::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat(&Token::Dot) {
                let name = self.ident()?;
                e = Expr::Prop(Box::new(e), name);
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Token::Num(n) => Ok(Expr::Num(n)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Bool(b) => Ok(Expr::Bool(b)),
            Token::Null => Ok(Expr::Null),
            Token::Ident(name) => Ok(Expr::Var(name)),
            Token::LParen => {
                let e = self.expression()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::LBracket => {
                let mut items = Vec::new();
                if !self.check(&Token::RBracket) {
                    loop {
                        items.push(self.expression()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(Expr::Array(items))
            }
            Token::LBrace => {
                let mut pairs = Vec::new();
                if !self.check(&Token::RBrace) {
                    loop {
                        let key = match self.advance() {
                            Token::Ident(s) | Token::Str(s) => s,
                            other => {
                                return Err(
                                    self.err(format!("expected object key, found {other:?}"))
                                )
                            }
                        };
                        self.expect(&Token::Colon)?;
                        pairs.push((key, self.expression()?));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(Expr::Object(pairs))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_let_and_arith_precedence() {
        let s = parse("let x = 1 + 2 * 3;").unwrap();
        assert_eq!(
            s.stmts[0],
            Stmt::Let(
                "x".into(),
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Num(1.0)),
                    Box::new(Expr::Bin(
                        BinOp::Mul,
                        Box::new(Expr::Num(2.0)),
                        Box::new(Expr::Num(3.0))
                    ))
                )
            )
        );
    }

    #[test]
    fn parses_function_decl() {
        let s = parse("function f(a, b) { return a + b; }").unwrap();
        match &s.stmts[0] {
            Stmt::Function(f) => {
                assert_eq!(f.name, "f");
                assert_eq!(f.params, vec!["a", "b"]);
                assert_eq!(f.body.len(), 1);
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let s = parse("if (a) { 1; } else if (b) { 2; } else { 3; }").unwrap();
        match &s.stmts[0] {
            Stmt::If(_, then, els) => {
                assert_eq!(then.len(), 1);
                assert!(matches!(els[0], Stmt::If(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn desugars_for_loop() {
        let s = parse("for (let i = 0; i < 3; i = i + 1) { x; }").unwrap();
        // init wrapped with the while in a constant-true if.
        match &s.stmts[0] {
            Stmt::If(Expr::Bool(true), body, _) => {
                assert!(matches!(body[0], Stmt::Let(..)));
                assert!(matches!(body[1], Stmt::While(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_calls_indexing_props() {
        let s = parse("console.log(a[0].b, f(1, 2));").unwrap();
        match &s.stmts[0] {
            Stmt::Expr(Expr::Call(callee, args)) => {
                assert!(matches!(**callee, Expr::Prop(..)));
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_object_and_array_literals() {
        let s = parse("let o = { a: 1, 'b': [1, 2, 3] };").unwrap();
        match &s.stmts[0] {
            Stmt::Let(_, Expr::Object(pairs)) => {
                assert_eq!(pairs.len(), 2);
                assert!(matches!(pairs[1].1, Expr::Array(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compound_assignment_desugars() {
        let s = parse("x += 2;").unwrap();
        match &s.stmts[0] {
            Stmt::Expr(Expr::Assign(target, value)) => {
                assert_eq!(**target, Expr::Var("x".into()));
                assert!(matches!(**value, Expr::Bin(BinOp::Add, ..)));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("a.b *= 3;").is_ok());
        assert!(parse("a[0] -= 1;").is_ok());
        assert!(parse("1 += 2;").is_err());
    }

    #[test]
    fn assignment_targets_validated() {
        assert!(parse("x = 1;").is_ok());
        assert!(parse("a[0] = 1;").is_ok());
        assert!(parse("a.b = 1;").is_ok());
        assert!(parse("1 = 2;").is_err());
    }

    #[test]
    fn nested_calls_and_parens() {
        assert!(parse("f(g(h(1)), (2 + 3) * 4);").is_ok());
    }

    #[test]
    fn error_on_unterminated_block() {
        assert!(parse("function f() { return 1;").is_err());
    }

    #[test]
    fn pathological_nesting_fails_cleanly() {
        // 10 000 nested parens must error, not blow the stack.
        let src = format!("{}1{};", "(".repeat(10_000), ")".repeat(10_000));
        assert!(parse(&src).is_err());
        // 10 000 unary minuses likewise.
        let src = format!("{}1;", "-".repeat(10_000));
        assert!(parse(&src).is_err());
        // Deeply nested blocks.
        let src = format!("{}1;{}", "if (true) { ".repeat(10_000), "}".repeat(10_000));
        assert!(parse(&src).is_err());
        // Reasonable nesting still parses.
        let src = format!("{}1{};", "(".repeat(50), ")".repeat(50));
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn logical_precedence_below_comparison() {
        let s = parse("a < b && c > d;").unwrap();
        match &s.stmts[0] {
            Stmt::Expr(Expr::Bin(BinOp::And, l, r)) => {
                assert!(matches!(**l, Expr::Bin(BinOp::Lt, ..)));
                assert!(matches!(**r, Expr::Bin(BinOp::Gt, ..)));
            }
            other => panic!("{other:?}"),
        }
    }
}
