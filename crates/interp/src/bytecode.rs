//! Bytecode: opcodes, chunks, and compiled programs.

/// One virtual-machine instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Push a number.
    Num(f64),
    /// Push a string constant (index into [`Program::strings`]).
    Str(u32),
    /// Push `true` / `false`.
    Bool(bool),
    /// Push null.
    Null,
    /// Push local slot.
    LoadLocal(u16),
    /// Store top of stack into local slot (pops).
    StoreLocal(u16),
    /// Push a global by name index.
    LoadGlobal(u32),
    /// Store top of stack into a global by name index (pops).
    StoreGlobal(u32),
    /// Binary ops (pop two, push one).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Modulo.
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
    /// Unconditional jump to absolute instruction index.
    Jump(u32),
    /// Pop; jump when false.
    JumpIfFalse(u32),
    /// Peek; jump when false (short-circuit `&&`), else pop.
    JumpIfFalsePeek(u32),
    /// Peek; jump when true (short-circuit `||`), else pop.
    JumpIfTruePeek(u32),
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Pop and store into the implicit script result register.
    SetResult,
    /// Push a function value for chunk index (bound to the running program).
    Closure(u32),
    /// Build an array from the top `n` stack values.
    MakeArray(u16),
    /// Push a fresh empty object.
    MakeObject,
    /// Pop a value, set it as property `name` on the object now on top,
    /// leaving the object (object-literal construction).
    InitProp(u32),
    /// Pop index and container, push element.
    GetIndex,
    /// Pop value, index, container; perform store; push value.
    SetIndex,
    /// Pop container, push property by name index.
    GetProp(u32),
    /// Pop value and container, set property, push value.
    SetProp(u32),
    /// Call with `n` arguments; callee is below the arguments.
    Call(u16),
    /// Return from the current frame (pops return value).
    Return,
}

/// A compiled function body (or the script's top level).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Chunk {
    /// Function name (`<main>` for the top level).
    pub name: String,
    /// Number of parameters.
    pub num_params: u16,
    /// Total local slots (params + lets).
    pub num_locals: u16,
    /// The instructions.
    pub code: Vec<Op>,
}

/// A compiled script: its chunks, string constants, and global names.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Chunk 0 is the script top level.
    pub chunks: Vec<Chunk>,
    /// String constant pool.
    pub strings: Vec<String>,
    /// Global name pool (identifiers referenced at global scope).
    pub names: Vec<String>,
    /// Original source length (drives import-cost accounting).
    pub source_len: usize,
}

impl Program {
    /// Approximate compiled size in bytes, used for heap commit accounting
    /// (a rough stand-in for machine code + metadata a JIT would emit).
    pub fn code_bytes(&self) -> usize {
        let ops: usize = self.chunks.iter().map(|c| c.code.len()).sum();
        let strings: usize = self.strings.iter().map(|s| s.len()).sum();
        let names: usize = self.names.iter().map(|s| s.len()).sum();
        ops * 8 + strings + names + self.chunks.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_bytes_scales_with_ops() {
        let mut p = Program::default();
        p.chunks.push(Chunk {
            name: "<main>".into(),
            num_params: 0,
            num_locals: 0,
            code: vec![Op::Null; 10],
        });
        let small = p.code_bytes();
        p.chunks[0].code.extend(vec![Op::Pop; 100]);
        assert!(p.code_bytes() > small);
    }
}
