//! Tokenizer for the miniscript language.

use core::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Numeric literal.
    Num(f64),
    /// String literal (contents, unescaped).
    Str(String),
    /// Identifier.
    Ident(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// Keywords.
    Let,
    /// `function`.
    Function,
    /// `return`.
    Return,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `for`.
    For,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `.`.
    Dot,
    /// `:`.
    Colon,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `=`.
    Assign,
    /// `+=`.
    PlusAssign,
    /// `-=`.
    MinusAssign,
    /// `*=`.
    StarAssign,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    And,
    /// `||`.
    Or,
    /// `!`.
    Not,
    /// End of input.
    Eof,
}

/// A lexing error with byte position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a whole source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text.parse::<f64>().map_err(|_| LexError {
                    at: start,
                    msg: format!("bad number literal {text:?}"),
                })?;
                out.push(Token::Num(n));
            }
            '"' | '\'' => {
                let quote = bytes[i];
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            at: i,
                            msg: "unterminated string".into(),
                        });
                    }
                    let b = bytes[i];
                    if b == quote {
                        i += 1;
                        break;
                    }
                    if b == b'\\' {
                        i += 1;
                        let esc = bytes.get(i).copied().ok_or(LexError {
                            at: i,
                            msg: "dangling escape".into(),
                        })?;
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'\\' => '\\',
                            b'"' => '"',
                            b'\'' => '\'',
                            other => {
                                return Err(LexError {
                                    at: i,
                                    msg: format!("unknown escape \\{}", other as char),
                                })
                            }
                        });
                        i += 1;
                    } else {
                        s.push(b as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                out.push(match word {
                    "let" | "var" | "const" => Token::Let,
                    "function" => Token::Function,
                    "return" => Token::Return,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "for" => Token::For,
                    "break" => Token::Break,
                    "continue" => Token::Continue,
                    "true" => Token::Bool(true),
                    "false" => Token::Bool(false),
                    "null" => Token::Null,
                    _ => Token::Ident(word.to_string()),
                });
            }
            _ => {
                let two = |a: u8, b: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b;
                let (tok, len) = if two(b'=', b'=') {
                    (Token::Eq, 2)
                } else if two(b'+', b'=') {
                    (Token::PlusAssign, 2)
                } else if two(b'-', b'=') {
                    (Token::MinusAssign, 2)
                } else if two(b'*', b'=') {
                    (Token::StarAssign, 2)
                } else if two(b'!', b'=') {
                    (Token::Ne, 2)
                } else if two(b'<', b'=') {
                    (Token::Le, 2)
                } else if two(b'>', b'=') {
                    (Token::Ge, 2)
                } else if two(b'&', b'&') {
                    (Token::And, 2)
                } else if two(b'|', b'|') {
                    (Token::Or, 2)
                } else {
                    let t = match c {
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        '{' => Token::LBrace,
                        '}' => Token::RBrace,
                        '[' => Token::LBracket,
                        ']' => Token::RBracket,
                        ',' => Token::Comma,
                        ';' => Token::Semi,
                        '.' => Token::Dot,
                        ':' => Token::Colon,
                        '+' => Token::Plus,
                        '-' => Token::Minus,
                        '*' => Token::Star,
                        '/' => Token::Slash,
                        '%' => Token::Percent,
                        '=' => Token::Assign,
                        '<' => Token::Lt,
                        '>' => Token::Gt,
                        '!' => Token::Not,
                        other => {
                            return Err(LexError {
                                at: i,
                                msg: format!("unexpected character {other:?}"),
                            })
                        }
                    };
                    (t, 1)
                };
                out.push(tok);
                i += len;
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_numbers_and_ops() {
        let toks = lex("1 + 2.5 * x").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Num(1.0),
                Token::Plus,
                Token::Num(2.5),
                Token::Star,
                Token::Ident("x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex(r#""a\nb" 'c'"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("a\nb".into()),
                Token::Str("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords() {
        let toks = lex("let f = function() { return true; }").unwrap();
        assert!(toks.contains(&Token::Let));
        assert!(toks.contains(&Token::Function));
        assert!(toks.contains(&Token::Return));
        assert!(toks.contains(&Token::Bool(true)));
    }

    #[test]
    fn const_and_var_alias_let() {
        assert_eq!(lex("const x").unwrap()[0], Token::Let);
        assert_eq!(lex("var x").unwrap()[0], Token::Let);
    }

    #[test]
    fn compound_assignment_tokens() {
        let toks = lex("a += 1; b -= 2; c *= 3").unwrap();
        assert!(toks.contains(&Token::PlusAssign));
        assert!(toks.contains(&Token::MinusAssign));
        assert!(toks.contains(&Token::StarAssign));
    }

    #[test]
    fn two_char_operators() {
        let toks = lex("a == b != c <= d >= e && f || g").unwrap();
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::And));
        assert!(toks.contains(&Token::Or));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("1 // ignore me\n+ 2").unwrap();
        assert_eq!(
            toks,
            vec![Token::Num(1.0), Token::Plus, Token::Num(2.0), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(lex("a @ b").is_err());
    }
}
