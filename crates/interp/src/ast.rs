//! Abstract syntax tree for miniscript.

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (strict boolean).
    And,
    /// `||` (strict boolean).
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Call: callee expression and arguments. Callees are either plain
    /// names (user/builtin functions) or property accesses (methods like
    /// `console.log`, resolved as dotted builtins).
    Call(Box<Expr>, Vec<Expr>),
    /// Array literal.
    Array(Vec<Expr>),
    /// Object literal: `(key, value)` pairs.
    Object(Vec<(String, Expr)>),
    /// Indexing: `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Property access: `a.b`.
    Prop(Box<Expr>, String),
    /// Assignment to a variable, index, or property.
    Assign(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`.
    Let(String, Expr),
    /// Bare expression statement.
    Expr(Expr),
    /// `return expr;` (expr optional → null).
    Return(Option<Expr>),
    /// `if (cond) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `function name(params) { body }`.
    Function(FunctionDecl),
}

/// A named function declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole parsed script.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script {
    /// Top-level statements (including function declarations).
    pub stmts: Vec<Stmt>,
}
