//! AST → bytecode compiler.
//!
//! Scoping is function-level (like `var`): every `let` inside a function
//! body claims a local slot; top-level `let`s become globals. Name
//! resolution is local-first, then global; unknown globals resolve to
//! builtins at run time.

use core::fmt;

use crate::ast::{BinOp, Expr, FunctionDecl, Stmt, UnOp};
use crate::bytecode::{Chunk, Op, Program};
use crate::parser::{parse, ParseError};

/// A compilation error.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.msg)
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError { msg: e.to_string() }
    }
}

/// Compiles source text into a [`Program`].
pub fn compile(src: &str) -> Result<Program, CompileError> {
    let script = parse(src)?;
    let mut c = Compiler {
        program: Program {
            source_len: src.len(),
            ..Program::default()
        },
    };
    // Chunk 0 is the top level.
    let main = c.compile_chunk("<main>", &[], &script.stmts, true)?;
    debug_assert_eq!(main, 0);
    Ok(c.program)
}

struct Compiler {
    program: Program,
}

struct FnCtx {
    chunk: Chunk,
    locals: Vec<String>,
    is_main: bool,
    loop_stack: Vec<LoopCtx>,
}

#[derive(Default)]
struct LoopCtx {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

impl Compiler {
    fn string_idx(&mut self, s: &str) -> u32 {
        if let Some(i) = self.program.strings.iter().position(|x| x == s) {
            return i as u32;
        }
        self.program.strings.push(s.to_string());
        self.program.strings.len() as u32 - 1
    }

    fn name_idx(&mut self, s: &str) -> u32 {
        if let Some(i) = self.program.names.iter().position(|x| x == s) {
            return i as u32;
        }
        self.program.names.push(s.to_string());
        self.program.names.len() as u32 - 1
    }

    fn compile_chunk(
        &mut self,
        name: &str,
        params: &[String],
        body: &[Stmt],
        is_main: bool,
    ) -> Result<u32, CompileError> {
        // Reserve our slot first so nested functions get later indices and
        // the top level stays chunk 0.
        let idx = self.program.chunks.len() as u32;
        self.program.chunks.push(Chunk::default());

        let mut ctx = FnCtx {
            chunk: Chunk {
                name: name.to_string(),
                num_params: params.len() as u16,
                num_locals: 0,
                code: Vec::new(),
            },
            locals: params.to_vec(),
            is_main,
            loop_stack: Vec::new(),
        };
        for stmt in body {
            self.stmt(&mut ctx, stmt)?;
        }
        // Implicit return null (main's value comes from the result register).
        ctx.chunk.code.push(Op::Null);
        ctx.chunk.code.push(Op::Return);
        ctx.chunk.num_locals = ctx.locals.len() as u16;
        self.program.chunks[idx as usize] = ctx.chunk;
        Ok(idx)
    }

    fn local_slot(ctx: &FnCtx, name: &str) -> Option<u16> {
        ctx.locals.iter().rposition(|l| l == name).map(|i| i as u16)
    }

    fn stmt(&mut self, ctx: &mut FnCtx, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let(name, value) => {
                self.expr(ctx, value)?;
                if ctx.is_main {
                    let n = self.name_idx(name);
                    ctx.chunk.code.push(Op::StoreGlobal(n));
                } else {
                    let slot = match Self::local_slot(ctx, name) {
                        Some(s) => s,
                        None => {
                            ctx.locals.push(name.clone());
                            if ctx.locals.len() > u16::MAX as usize {
                                return Err(CompileError {
                                    msg: format!("too many locals in {}", ctx.chunk.name),
                                });
                            }
                            ctx.locals.len() as u16 - 1
                        }
                    };
                    ctx.chunk.code.push(Op::StoreLocal(slot));
                }
            }
            Stmt::Expr(e) => {
                self.expr(ctx, e)?;
                ctx.chunk
                    .code
                    .push(if ctx.is_main { Op::SetResult } else { Op::Pop });
            }
            Stmt::Return(value) => {
                match value {
                    Some(e) => self.expr(ctx, e)?,
                    None => ctx.chunk.code.push(Op::Null),
                }
                ctx.chunk.code.push(Op::Return);
            }
            Stmt::If(cond, then, els) => {
                self.expr(ctx, cond)?;
                let jf = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::JumpIfFalse(0));
                for s in then {
                    self.stmt(ctx, s)?;
                }
                if els.is_empty() {
                    let end = ctx.chunk.code.len() as u32;
                    ctx.chunk.code[jf] = Op::JumpIfFalse(end);
                } else {
                    let jend = ctx.chunk.code.len();
                    ctx.chunk.code.push(Op::Jump(0));
                    let else_start = ctx.chunk.code.len() as u32;
                    ctx.chunk.code[jf] = Op::JumpIfFalse(else_start);
                    for s in els {
                        self.stmt(ctx, s)?;
                    }
                    let end = ctx.chunk.code.len() as u32;
                    ctx.chunk.code[jend] = Op::Jump(end);
                }
            }
            Stmt::While(cond, body) => {
                let top = ctx.chunk.code.len() as u32;
                self.expr(ctx, cond)?;
                let jf = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::JumpIfFalse(0));
                ctx.loop_stack.push(LoopCtx::default());
                for s in body {
                    self.stmt(ctx, s)?;
                }
                let loop_ctx = ctx.loop_stack.pop().expect("pushed above");
                ctx.chunk.code.push(Op::Jump(top));
                let end = ctx.chunk.code.len() as u32;
                ctx.chunk.code[jf] = Op::JumpIfFalse(end);
                for b in loop_ctx.breaks {
                    ctx.chunk.code[b] = Op::Jump(end);
                }
                for c in loop_ctx.continues {
                    ctx.chunk.code[c] = Op::Jump(top);
                }
            }
            Stmt::Break => {
                let at = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::Jump(0));
                match ctx.loop_stack.last_mut() {
                    Some(l) => l.breaks.push(at),
                    None => {
                        return Err(CompileError {
                            msg: "break outside loop".into(),
                        })
                    }
                }
            }
            Stmt::Continue => {
                let at = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::Jump(0));
                match ctx.loop_stack.last_mut() {
                    Some(l) => l.continues.push(at),
                    None => {
                        return Err(CompileError {
                            msg: "continue outside loop".into(),
                        })
                    }
                }
            }
            Stmt::Function(decl) => {
                let chunk = self.function(ctx, decl)?;
                ctx.chunk.code.push(Op::Closure(chunk));
                if ctx.is_main {
                    let n = self.name_idx(&decl.name);
                    ctx.chunk.code.push(Op::StoreGlobal(n));
                } else {
                    ctx.locals.push(decl.name.clone());
                    ctx.chunk
                        .code
                        .push(Op::StoreLocal(ctx.locals.len() as u16 - 1));
                }
            }
        }
        Ok(())
    }

    fn function(&mut self, _outer: &FnCtx, decl: &FunctionDecl) -> Result<u32, CompileError> {
        self.compile_chunk(&decl.name, &decl.params, &decl.body, false)
    }

    fn expr(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => ctx.chunk.code.push(Op::Num(*n)),
            Expr::Str(s) => {
                let i = self.string_idx(s);
                ctx.chunk.code.push(Op::Str(i));
            }
            Expr::Bool(b) => ctx.chunk.code.push(Op::Bool(*b)),
            Expr::Null => ctx.chunk.code.push(Op::Null),
            Expr::Var(name) => match Self::local_slot(ctx, name) {
                Some(slot) if !ctx.is_main => ctx.chunk.code.push(Op::LoadLocal(slot)),
                _ => {
                    let n = self.name_idx(name);
                    ctx.chunk.code.push(Op::LoadGlobal(n));
                }
            },
            Expr::Bin(BinOp::And, l, r) => {
                self.expr(ctx, l)?;
                let j = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::JumpIfFalsePeek(0));
                self.expr(ctx, r)?;
                let end = ctx.chunk.code.len() as u32;
                ctx.chunk.code[j] = Op::JumpIfFalsePeek(end);
            }
            Expr::Bin(BinOp::Or, l, r) => {
                self.expr(ctx, l)?;
                let j = ctx.chunk.code.len();
                ctx.chunk.code.push(Op::JumpIfTruePeek(0));
                self.expr(ctx, r)?;
                let end = ctx.chunk.code.len() as u32;
                ctx.chunk.code[j] = Op::JumpIfTruePeek(end);
            }
            Expr::Bin(op, l, r) => {
                self.expr(ctx, l)?;
                self.expr(ctx, r)?;
                ctx.chunk.code.push(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
            }
            Expr::Un(op, inner) => {
                self.expr(ctx, inner)?;
                ctx.chunk.code.push(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            Expr::Call(callee, args) => {
                self.expr(ctx, callee)?;
                for a in args {
                    self.expr(ctx, a)?;
                }
                if args.len() > u16::MAX as usize {
                    return Err(CompileError {
                        msg: "too many call arguments".into(),
                    });
                }
                ctx.chunk.code.push(Op::Call(args.len() as u16));
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(ctx, item)?;
                }
                ctx.chunk.code.push(Op::MakeArray(items.len() as u16));
            }
            Expr::Object(pairs) => {
                ctx.chunk.code.push(Op::MakeObject);
                for (key, value) in pairs {
                    self.expr(ctx, value)?;
                    let n = self.name_idx(key);
                    ctx.chunk.code.push(Op::InitProp(n));
                }
            }
            Expr::Index(container, index) => {
                self.expr(ctx, container)?;
                self.expr(ctx, index)?;
                ctx.chunk.code.push(Op::GetIndex);
            }
            Expr::Prop(container, name) => {
                self.expr(ctx, container)?;
                let n = self.name_idx(name);
                ctx.chunk.code.push(Op::GetProp(n));
            }
            Expr::Assign(target, value) => match &**target {
                Expr::Var(name) => {
                    self.expr(ctx, value)?;
                    ctx.chunk.code.push(Op::Dup);
                    match Self::local_slot(ctx, name) {
                        Some(slot) if !ctx.is_main => ctx.chunk.code.push(Op::StoreLocal(slot)),
                        _ => {
                            let n = self.name_idx(name);
                            ctx.chunk.code.push(Op::StoreGlobal(n));
                        }
                    }
                }
                Expr::Index(container, index) => {
                    self.expr(ctx, container)?;
                    self.expr(ctx, index)?;
                    self.expr(ctx, value)?;
                    ctx.chunk.code.push(Op::SetIndex);
                }
                Expr::Prop(container, name) => {
                    self.expr(ctx, container)?;
                    self.expr(ctx, value)?;
                    let n = self.name_idx(name);
                    ctx.chunk.code.push(Op::SetProp(n));
                }
                _ => {
                    return Err(CompileError {
                        msg: "invalid assignment target".into(),
                    })
                }
            },
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_is_chunk_zero() {
        let p = compile("let x = 1; function f() { return 2; }").unwrap();
        assert_eq!(p.chunks[0].name, "<main>");
        assert_eq!(p.chunks[1].name, "f");
    }

    #[test]
    fn params_become_locals() {
        let p = compile("function f(a, b, c) { let d = 1; return d; }").unwrap();
        let f = &p.chunks[1];
        assert_eq!(f.num_params, 3);
        assert_eq!(f.num_locals, 4);
    }

    #[test]
    fn top_level_let_is_global() {
        let p = compile("let x = 1; x;").unwrap();
        assert!(p.chunks[0].code.contains(&Op::StoreGlobal(0)));
        assert!(p.names.contains(&"x".to_string()));
    }

    #[test]
    fn while_loop_jumps_are_patched() {
        let p = compile("let i = 0; while (i < 3) { i = i + 1; }").unwrap();
        for op in &p.chunks[0].code {
            match op {
                Op::Jump(t) | Op::JumpIfFalse(t) => {
                    assert!((*t as usize) <= p.chunks[0].code.len());
                    assert_ne!(*t, 0, "unpatched jump");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(compile("break;").is_err());
        assert!(compile("while (true) { break; }").is_ok());
    }

    #[test]
    fn strings_are_pooled() {
        let p = compile("'a'; 'b'; 'a';").unwrap();
        assert_eq!(p.strings, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn short_circuit_compiles_to_peek_jumps() {
        let p = compile("true && false;").unwrap();
        assert!(p.chunks[0]
            .code
            .iter()
            .any(|op| matches!(op, Op::JumpIfFalsePeek(_))));
        let p = compile("true || false;").unwrap();
        assert!(p.chunks[0]
            .code
            .iter()
            .any(|op| matches!(op, Op::JumpIfTruePeek(_))));
    }

    #[test]
    fn source_len_recorded() {
        let src = "let x = 1;";
        assert_eq!(compile(src).unwrap().source_len, src.len());
    }
}
