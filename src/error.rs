//! The workspace-level error surface.
//!
//! Every mechanism crate defines its own narrow error enum (a frame pool
//! can only run out of frames; a bridge can only hit its endpoint limit).
//! Code that drives the whole system — benchmarks, examples, integration
//! tests — crosses several of those layers in one expression, so this
//! module folds them into a single [`enum@Error`] with `From` conversions,
//! letting `?` propagate any of them through one signature.

use seuss_baseline::DockerError;
use seuss_core::{ConfigError, NodeError};
use seuss_faults::FaultError;
use seuss_mem::MemError;
use seuss_net::{BridgeError, ProxyError};
use seuss_paging::PageFault;
use seuss_snapshot::SnapshotError;
use seuss_unikernel::UcError;

/// Any failure the SEUSS workspace can produce, by originating layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// A rejected node configuration (builder validation).
    Config(ConfigError),
    /// A node-level failure (OOM, function error, bad token).
    Node(NodeError),
    /// A UC-level failure (load, script, bad state).
    Uc(UcError),
    /// A snapshot store failure (dangling id, live dependents).
    Snapshot(SnapshotError),
    /// Physical frame pool exhaustion.
    Mem(MemError),
    /// An unresolvable page fault.
    Fault(PageFault),
    /// A Docker baseline failure (cache full, bridge, unknown id).
    Docker(DockerError),
    /// A bridge admission failure (endpoint limit).
    Bridge(BridgeError),
    /// A NAT proxy failure (ports exhausted, no route).
    Proxy(ProxyError),
    /// An injected fault surfaced to the caller (crash, drop, pressure,
    /// corruption, or an exhausted retry budget).
    FaultInjected(FaultError),
}

impl Error {
    /// True when the underlying cause is physical memory exhaustion,
    /// whichever layer reported it. The OOM daemon and the density
    /// experiments branch on this.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(
            self,
            Error::Node(NodeError::OutOfMemory)
                | Error::Uc(UcError::Mem(_))
                | Error::Uc(UcError::Fault(PageFault::OutOfMemory(_)))
                | Error::Snapshot(SnapshotError::OutOfMemory)
                | Error::Mem(_)
                | Error::Fault(PageFault::OutOfMemory(_))
        )
    }

    /// True when the failure is transient: retrying the same operation
    /// can succeed once the injected condition clears. This is the
    /// predicate the platform's [`seuss_faults::RetryPolicy`] consults.
    /// Resource exhaustion (OOM) is *not* transient — retrying without
    /// reclaim reproduces it — and neither is an exhausted retry budget.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::FaultInjected(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Config(e) => write!(f, "{e}"),
            Error::Node(e) => write!(f, "{e}"),
            Error::Uc(e) => write!(f, "{e}"),
            Error::Snapshot(e) => write!(f, "{e}"),
            Error::Mem(e) => write!(f, "{e}"),
            Error::Fault(e) => write!(f, "{e}"),
            Error::Docker(e) => write!(f, "{e}"),
            Error::Bridge(e) => write!(f, "{e}"),
            Error::Proxy(e) => write!(f, "{e}"),
            Error::FaultInjected(e) => write!(f, "injected fault: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Node(e) => Some(e),
            Error::Uc(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Mem(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Docker(e) => Some(e),
            Error::Bridge(e) => Some(e),
            Error::Proxy(e) => Some(e),
            Error::FaultInjected(e) => Some(e),
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<NodeError> for Error {
    fn from(e: NodeError) -> Self {
        Error::Node(e)
    }
}

impl From<UcError> for Error {
    fn from(e: UcError) -> Self {
        Error::Uc(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<MemError> for Error {
    fn from(e: MemError) -> Self {
        Error::Mem(e)
    }
}

impl From<PageFault> for Error {
    fn from(e: PageFault) -> Self {
        Error::Fault(e)
    }
}

impl From<DockerError> for Error {
    fn from(e: DockerError) -> Self {
        Error::Docker(e)
    }
}

impl From<BridgeError> for Error {
    fn from(e: BridgeError) -> Self {
        Error::Bridge(e)
    }
}

impl From<ProxyError> for Error {
    fn from(e: ProxyError) -> Self {
        Error::Proxy(e)
    }
}

impl From<FaultError> for Error {
    fn from(e: FaultError) -> Self {
        Error::FaultInjected(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    fn deploy_cold() -> Result<&'static str> {
        let _cfg = seuss_core::SeussConfig::test_builder().build()?;
        Err(NodeError::OutOfMemory)?;
        Ok("unreachable")
    }

    #[test]
    fn question_mark_crosses_layers() {
        let e = deploy_cold().unwrap_err();
        assert_eq!(e, Error::Node(NodeError::OutOfMemory));
        assert!(e.is_out_of_memory());
    }

    #[test]
    fn oom_detection_spans_layers() {
        assert!(Error::from(MemError::OutOfFrames).is_out_of_memory());
        assert!(Error::from(SnapshotError::OutOfMemory).is_out_of_memory());
        assert!(Error::from(UcError::Mem(MemError::OutOfFrames)).is_out_of_memory());
        assert!(!Error::from(NodeError::UnknownToken).is_out_of_memory());
        assert!(!Error::from(DockerError::CacheFull).is_out_of_memory());
    }

    #[test]
    fn display_and_source_delegate() {
        let e = Error::from(ConfigError::ZeroCores);
        assert!(e.to_string().contains("cores"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transience_follows_the_fault_taxonomy() {
        for fault in [
            FaultError::NodeCrashed,
            FaultError::PacketDropped,
            FaultError::MemoryPressure,
            FaultError::SnapshotCorrupted,
        ] {
            let e = Error::from(fault);
            assert!(e.is_transient(), "{e} should be transient");
            assert!(!e.is_out_of_memory());
        }
        assert!(!Error::from(FaultError::RetryBudgetExhausted).is_transient());
        // Non-fault layers never read as transient: retrying an OOM or a
        // config rejection without intervention reproduces it.
        assert!(!Error::from(MemError::OutOfFrames).is_transient());
        assert!(!Error::from(ConfigError::ZeroCores).is_transient());
        assert!(!Error::from(NodeError::UnknownToken).is_transient());
    }

    #[test]
    fn fault_errors_display_and_source() {
        let e = Error::from(FaultError::SnapshotCorrupted);
        assert_eq!(e, Error::FaultInjected(FaultError::SnapshotCorrupted));
        assert!(e.to_string().contains("injected fault"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
