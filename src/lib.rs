//! `seuss` — a from-scratch Rust reproduction of *SEUSS: Skip Redundant
//! Paths to Make Serverless Fast* (Cadden et al., EuroSys 2020).
//!
//! SEUSS deploys serverless functions from **unikernel snapshots**: a
//! function's whole stack (library OS + language runtime + function code)
//! lives in one flat address space; capturing it is a page-table
//! operation; deploying it is a shallow page-table clone with
//! copy-on-write sharing. Combined with **snapshot stacks** (function
//! snapshots are page-level diffs on a shared runtime snapshot) and
//! **anticipatory optimization** (pre-executing common paths before the
//! base capture), cold starts drop from hundreds of milliseconds to
//! single-digit milliseconds and tens of thousands of function contexts
//! fit in memory.
//!
//! This crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `simcore` | deterministic discrete-event engine, virtual time, stats |
//! | [`mem`] | `seuss-mem` | physical frame pool with refcounts and OOM accounting |
//! | [`paging`] | `seuss-paging` | software 4-level page tables, COW, dirty tracking |
//! | [`interp`] | `miniscript` | JS-like interpreter whose heap lives in guest pages |
//! | [`net`] | `seuss-net` | TCP model, per-core NAT proxy, Linux-bridge bottleneck |
//! | [`snapshot`] | `seuss-snapshot` | snapshots, snapshot stacks, capture/deploy |
//! | [`unikernel`] | `seuss-unikernel` | Rumprun-style UCs with the invocation driver |
//! | [`core`] | `seuss-core` | the SEUSS OS node: cold/warm/hot paths, AO, caches |
//! | [`baseline`] | `seuss-baseline` | process / Docker / Firecracker baselines |
//! | [`platform`] | `seuss-platform` | OpenWhisk-like control-plane simulation |
//! | [`faults`] | `seuss-faults` | deterministic fault plans, retry/backoff policies |
//! | [`exec`] | `seuss-exec` | parallel sharded trial executor, byte-deterministic |
//! | [`workload`] | `seuss-workload` | the paper's load-generation benchmark |
//!
//! # Examples
//!
//! Boot a paper-scale node and watch the three invocation paths:
//!
//! ```
//! use seuss::core::{Invocation, SeussConfig, SeussNode};
//!
//! let cfg = SeussConfig::builder()
//!     .mem_mib(2048) // shrink for the doctest
//!     .build()
//!     .unwrap();
//! let (mut node, _init) = SeussNode::new(cfg).unwrap();
//! let src = "function main(args) { return 6 * 7; }";
//! match node.invoke(1, src, &[]).unwrap() {
//!     Invocation::Completed { result, costs, .. } => {
//!         assert_eq!(result, "42");
//!         // Cold path: deploy + import + capture + run, single-digit ms.
//!         assert!(costs.total().as_millis_f64() < 10.0);
//!     }
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;

pub use error::{Error, Result};

pub use miniscript as interp;
pub use seuss_baseline as baseline;
pub use seuss_core as core;
pub use seuss_exec as exec;
pub use seuss_faults as faults;
pub use seuss_mem as mem;
pub use seuss_net as net;
pub use seuss_paging as paging;
pub use seuss_platform as platform;
pub use seuss_snapshot as snapshot;
pub use seuss_store as store;
pub use seuss_trace as trace;
pub use seuss_unikernel as unikernel;
pub use seuss_workload as workload;
pub use simcore as sim;
