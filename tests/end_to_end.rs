//! Cross-crate integration tests: the full SEUSS stack driven through
//! the `seuss` facade, exercising properties no single crate can test —
//! multi-tenant isolation across shared snapshots, platform-level flows
//! with blocking IO, and memory behaviour under sustained load.

use seuss::core::{AoLevel, Invocation, NodeError, SeussConfig, SeussNode};
use seuss::platform::{
    run_trial, BackendKind, ClusterConfig, FnKind, Registry, RequestStatus, WorkloadSpec,
};
use seuss::sim::SimDuration;

fn small_node() -> SeussNode {
    let cfg = SeussConfig::builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    SeussNode::new(cfg).expect("node").0
}

fn completed(inv: Invocation) -> String {
    match inv {
        Invocation::Completed { result, .. } => result,
        other => panic!("expected completion, got {other:?}"),
    }
}

#[test]
fn tenants_sharing_a_base_snapshot_cannot_see_each_other() {
    let mut node = small_node();
    // Tenant A stashes a "secret" in its interpreter globals.
    let a = "let secret = 'tenant-a-credentials'; function main(args) { return secret; }";
    assert_eq!(
        completed(node.invoke(1, a, &[]).expect("a")),
        "tenant-a-credentials"
    );
    // Tenant B — deployed from the same base snapshot — must not resolve
    // tenant A's global.
    let b = "function main(args) { return secret; }";
    match node.invoke(2, b, &[]) {
        Err(NodeError::Function(msg)) => assert!(msg.contains("secret"), "{msg}"),
        other => panic!("tenant B read tenant A's state: {other:?}"),
    }
}

#[test]
fn function_state_resets_per_uc_but_persists_within_one() {
    let mut node = small_node();
    let src = "let n = 0; function main(args) { n = n + 1; return n; }";
    // Cold then hot reuse the same UC: the counter advances.
    assert_eq!(completed(node.invoke(5, src, &[]).expect("cold")), "1");
    assert_eq!(completed(node.invoke(5, src, &[]).expect("hot")), "2");
    // Drop the idle UC: a warm deploy starts from the snapshot (captured
    // before the first run), so the counter restarts.
    while let Some(uc) = node.idle.take(5) {
        node.images
            .destroy_uc(&mut node.mmu, &mut node.mem, &mut node.snaps, uc);
    }
    assert_eq!(completed(node.invoke(5, src, &[]).expect("warm")), "1");
}

#[test]
fn io_bound_invocation_round_trips_through_node() {
    let mut node = small_node();
    let src = "function main(args) { let r = http_get('http://backend/q'); return 'got:' + r; }";
    let token = match node.invoke(9, src, &[]).expect("invoke") {
        Invocation::Blocked { token, url, .. } => {
            assert_eq!(url, "http://backend/q");
            token
        }
        other => panic!("{other:?}"),
    };
    let result = completed(node.resume_invocation(token, "200 OK").expect("resume"));
    assert_eq!(result, "got:200 OK");
}

#[test]
fn sustained_unique_function_load_stays_within_memory() {
    let cfg = SeussConfig::builder()
        .mem_mib(1024) // deliberately tight
        .build()
        .expect("valid config");
    let (mut node, _) = SeussNode::new(cfg).expect("node");
    let src = "function main(args) { return 1; }";
    let capacity = node.mem.stats().capacity_frames;
    // Far more unique functions than a 1 GiB node can cache: the OOM
    // daemon must evict idle UCs and old snapshots rather than fail.
    for f in 0..600 {
        node.invoke(f, src, &[]).expect("invoke under pressure");
        assert!(node.mem.stats().used_frames <= capacity);
    }
    assert!(
        node.stats.oom_reclaims > 0,
        "pressure never triggered reclaim"
    );
    assert_eq!(node.stats.errors, 0);
}

#[test]
fn node_arguments_and_results_cross_the_boundary() {
    let mut node = small_node();
    let src = r#"
        function main(args) {
            let n = num(args.count);
            let s = 0;
            for (let i = 1; i <= n; i = i + 1) { s = s + i; }
            return args.label + ':' + s;
        }
    "#;
    let out = completed(
        node.invoke(3, src, &[("count", "10"), ("label", "sum")])
            .expect("invoke"),
    );
    assert_eq!(out, "sum:55");
}

#[test]
fn platform_trial_mixed_kinds_end_to_end() {
    let mut reg = Registry::new();
    reg.register_many(0, 2, FnKind::Nop);
    reg.register_many(2, 2, FnKind::Io);
    reg.register_many(4, 1, FnKind::Cpu(SimDuration::from_millis(20)));
    let order: Vec<u64> = (0..60).map(|i| i % 5).collect();
    let spec = WorkloadSpec::closed_loop(order, 6);

    let node = SeussConfig::builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    let cfg = ClusterConfig {
        backend: BackendKind::Seuss(Box::new(node)),
        ..ClusterConfig::seuss_paper()
    };
    let out = run_trial(cfg, reg, &spec);
    assert_eq!(out.analysis.completed, 60);
    assert_eq!(out.analysis.errors, 0);
    // IO functions must show the 250 ms external block in their latency.
    let io_lat: Vec<f64> = out
        .records
        .iter()
        .filter(|r| (2..4).contains(&r.fn_id) && r.status == RequestStatus::Ok)
        .map(|r| r.latency_ms)
        .collect();
    assert!(!io_lat.is_empty());
    assert!(
        io_lat.iter().all(|&l| l >= 250.0),
        "IO latency below block time: {io_lat:?}"
    );
}

#[test]
fn ao_is_worth_it_end_to_end() {
    // The same tiny trial on a no-AO node and a full-AO node: full AO
    // must deliver strictly better cold latency.
    let run = |ao: AoLevel| {
        let node = SeussConfig::builder()
            .mem_mib(2048)
            .ao_level(ao)
            .build()
            .expect("valid config");
        let cfg = ClusterConfig {
            backend: BackendKind::Seuss(Box::new(node)),
            ..ClusterConfig::seuss_paper()
        };
        let mut reg = Registry::new();
        reg.register_many(0, 16, FnKind::Nop);
        let spec = WorkloadSpec::closed_loop((0..16).collect(), 4);
        run_trial(cfg, reg, &spec).analysis.latency.p50
    };
    let no_ao = run(AoLevel::None);
    let full = run(AoLevel::NetworkAndInterpreter);
    assert!(
        no_ao > full + 20.0,
        "all-cold p50 without AO ({no_ao}) must exceed with-AO ({full}) by the hoisted work"
    );
}

#[test]
fn hypercall_surface_is_narrow() {
    // The whole guest/host interface is 12 calls (§5) — spot-check that a
    // full boot+invoke flow never leaves that enum.
    use seuss::unikernel::solo5::HYPERCALL_COUNT;
    assert_eq!(HYPERCALL_COUNT, 12);
    let mut node = small_node();
    node.invoke(1, "function main(a) { return 0; }", &[])
        .expect("invoke");
    // (Counters live per-UC; the type system already guarantees the
    // interface — this test documents the claim at the integration level.)
}
