//! Whole-stack determinism: identical configurations and seeds must
//! produce byte-identical results — the property that makes every number
//! in EXPERIMENTS.md reproducible.

use seuss::core::SeussConfig;
use seuss::exec::{run_sharded, BackendSpec, ExecConfig, ShardPlan};
use seuss::platform::{run_trial, BackendKind, ClusterConfig};
use seuss::workload::{records_csv, sharded_artifacts, BurstParams, TrialParams};

fn seuss_cfg() -> ClusterConfig {
    let node = SeussConfig::builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    ClusterConfig {
        backend: BackendKind::Seuss(Box::new(node)),
        ..ClusterConfig::seuss_paper()
    }
}

#[test]
fn seuss_trials_are_deterministic() {
    let run = || {
        let (reg, spec) = TrialParams {
            invocations: 256,
            set_size: 16,
            workers: 8,
            kind: seuss::platform::FnKind::Nop,
            seed: 99,
        }
        .build();
        let out = run_trial(seuss_cfg(), reg, &spec);
        (records_csv(&out.records), out.finished_at, out.events)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "records differ between identical runs");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn linux_trials_are_deterministic_with_fixed_seed() {
    // The Linux backend uses randomness (bridge drops); with a fixed seed
    // it must still replay exactly.
    let run = || {
        let (reg, spec) = TrialParams {
            invocations: 200,
            set_size: 32,
            workers: 8,
            kind: seuss::platform::FnKind::Nop,
            seed: 5,
        }
        .build();
        let out = run_trial(ClusterConfig::linux_paper(), reg, &spec);
        records_csv(&out.records)
    };
    assert_eq!(run(), run());
}

#[test]
fn burst_runs_are_deterministic() {
    let run = || {
        let mut p = BurstParams::paper(16);
        p.bursts = 2;
        p.burst_size = 32;
        let (reg, spec) = p.build();
        let out = run_trial(seuss_cfg(), reg, &spec);
        records_csv(&out.records)
    };
    assert_eq!(run(), run());
}

#[test]
fn cross_run_replay_is_byte_identical_for_both_backends() {
    // The replay contract, stated once for every backend: a fresh
    // `run_trial` with an identical seed must reproduce the full record
    // stream byte-for-byte — in both the CSV and the JSON-lines
    // renderings — with nothing shared between the two invocations.
    type CfgFn = fn() -> ClusterConfig;
    let backends: [(&str, CfgFn); 2] = [
        ("seuss", seuss_cfg as CfgFn),
        ("linux", ClusterConfig::linux_paper as CfgFn),
    ];
    for (name, cfg) in backends {
        let run = || {
            let (reg, spec) = TrialParams {
                invocations: 192,
                set_size: 24,
                workers: 8,
                kind: seuss::platform::FnKind::Nop,
                seed: 1234,
            }
            .build();
            let out = run_trial(cfg(), reg, &spec);
            (
                records_csv(&out.records),
                seuss::platform::records_jsonl(&out.records),
            )
        };
        let (csv_a, jsonl_a) = run();
        let (csv_b, jsonl_b) = run();
        assert_eq!(csv_a, csv_b, "{name}: records_csv differs across runs");
        assert_eq!(
            jsonl_a, jsonl_b,
            "{name}: records_jsonl differs across runs"
        );
        assert!(!csv_a.is_empty(), "{name}: trial produced no records");
    }
}

#[test]
fn sharded_executor_is_byte_identical_across_worker_counts() {
    // The parallel executor's contract: for a fixed shard count, the
    // worker-thread count is pure execution speed — a seeded fig4-style
    // trial renders byte-identical records CSV, records JSONL, trace
    // JSONL, and metrics JSON at workers ∈ {1, 2, 4}.
    let (reg, spec) = TrialParams::throughput(64, 7).build();
    let node = SeussConfig::builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    let cfg = ExecConfig {
        backend: BackendSpec::Seuss(Box::new(node)),
        ..ExecConfig::seuss_paper()
    }
    .traced();
    let run = |workers: usize| {
        let out = run_sharded(&cfg, &reg, &spec, ShardPlan::new(4, workers));
        (sharded_artifacts(&out), out.finished_at, out.events)
    };
    let (a1, fin1, ev1) = run(1);
    for workers in [2usize, 4] {
        let (a, fin, ev) = run(workers);
        assert_eq!(
            a.records_csv, a1.records_csv,
            "records CSV diverges at workers={workers}"
        );
        assert_eq!(
            a.records_jsonl, a1.records_jsonl,
            "records JSONL diverges at workers={workers}"
        );
        assert_eq!(
            a.trace_jsonl, a1.trace_jsonl,
            "trace JSONL diverges at workers={workers}"
        );
        assert_eq!(
            a.metrics_json, a1.metrics_json,
            "metrics report diverges at workers={workers}"
        );
        assert_eq!(fin, fin1, "finished_at diverges at workers={workers}");
        assert_eq!(ev, ev1, "event count diverges at workers={workers}");
    }
    assert!(!a1.records_csv.is_empty());
}

#[test]
fn one_shard_reproduces_the_legacy_single_threaded_trial() {
    // shards = 1 must degenerate to exactly the legacy `run_trial`
    // artifacts, even when executed through the parallel machinery.
    let (reg, spec) = TrialParams {
        invocations: 192,
        set_size: 24,
        workers: 8,
        kind: seuss::platform::FnKind::Nop,
        seed: 1234,
    }
    .build();
    let legacy = run_trial(seuss_cfg(), reg.clone(), &spec);

    let node = SeussConfig::builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    let cfg = ExecConfig {
        backend: BackendSpec::Seuss(Box::new(node)),
        ..ExecConfig::seuss_paper()
    };
    for workers in [1usize, 4] {
        let sharded = run_sharded(&cfg, &reg, &spec, ShardPlan::new(1, workers));
        assert_eq!(
            records_csv(&sharded.records),
            records_csv(&legacy.records),
            "one-shard run diverges from legacy at workers={workers}"
        );
        assert_eq!(sharded.finished_at, legacy.finished_at);
        assert_eq!(sharded.events, legacy.events);
    }
}

#[test]
fn different_seeds_change_the_order_not_the_aggregates() {
    let run = |seed: u64| {
        let (reg, spec) = TrialParams {
            invocations: 256,
            set_size: 16,
            workers: 8,
            kind: seuss::platform::FnKind::Nop,
            seed,
        }
        .build();
        run_trial(seuss_cfg(), reg, &spec)
    };
    let a = run(1);
    let b = run(2);
    // Same totals and path mix (16 colds either way)…
    assert_eq!(a.analysis.completed, b.analysis.completed);
    assert_eq!(a.analysis.paths.0, b.analysis.paths.0);
    // …but a genuinely different interleaving.
    assert_ne!(records_csv(&a.records), records_csv(&b.records));
}
