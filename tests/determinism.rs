//! Whole-stack determinism: identical configurations and seeds must
//! produce byte-identical results — the property that makes every number
//! in EXPERIMENTS.md reproducible.

use seuss::core::SeussConfig;
use seuss::platform::{run_trial, BackendKind, ClusterConfig};
use seuss::workload::{records_csv, BurstParams, TrialParams};

fn seuss_cfg() -> ClusterConfig {
    let mut node = SeussConfig::paper_node();
    node.mem_mib = 2048;
    ClusterConfig {
        backend: BackendKind::Seuss(Box::new(node)),
        ..ClusterConfig::seuss_paper()
    }
}

#[test]
fn seuss_trials_are_deterministic() {
    let run = || {
        let (reg, spec) = TrialParams {
            invocations: 256,
            set_size: 16,
            workers: 8,
            kind: seuss::platform::FnKind::Nop,
            seed: 99,
        }
        .build();
        let out = run_trial(seuss_cfg(), reg, &spec);
        (records_csv(&out.records), out.finished_at, out.events)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "records differ between identical runs");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn linux_trials_are_deterministic_with_fixed_seed() {
    // The Linux backend uses randomness (bridge drops); with a fixed seed
    // it must still replay exactly.
    let run = || {
        let (reg, spec) = TrialParams {
            invocations: 200,
            set_size: 32,
            workers: 8,
            kind: seuss::platform::FnKind::Nop,
            seed: 5,
        }
        .build();
        let out = run_trial(ClusterConfig::linux_paper(), reg, &spec);
        records_csv(&out.records)
    };
    assert_eq!(run(), run());
}

#[test]
fn burst_runs_are_deterministic() {
    let run = || {
        let mut p = BurstParams::paper(16);
        p.bursts = 2;
        p.burst_size = 32;
        let (reg, spec) = p.build();
        let out = run_trial(seuss_cfg(), reg, &spec);
        records_csv(&out.records)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_the_order_not_the_aggregates() {
    let run = |seed: u64| {
        let (reg, spec) = TrialParams {
            invocations: 256,
            set_size: 16,
            workers: 8,
            kind: seuss::platform::FnKind::Nop,
            seed,
        }
        .build();
        run_trial(seuss_cfg(), reg, &spec)
    };
    let a = run(1);
    let b = run(2);
    // Same totals and path mix (16 colds either way)…
    assert_eq!(a.analysis.completed, b.analysis.completed);
    assert_eq!(a.analysis.paths.0, b.analysis.paths.0);
    // …but a genuinely different interleaving.
    assert_ne!(records_csv(&a.records), records_csv(&b.records));
}
