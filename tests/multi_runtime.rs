//! Multi-runtime integration: a node serving Node.js *and* Python
//! functions keeps one base snapshot per interpreter (§4: "these runtime
//! snapshots may be relatively large … but there are few of them: only
//! one per supported interpreter").

use seuss::core::{Invocation, RuntimeKind, SeussConfig, SeussNode};
use seuss::platform::{run_trial, BackendKind, ClusterConfig, FnKind, Registry, WorkloadSpec};

fn dual_node(mem_mib: u64) -> SeussNode {
    let cfg = SeussConfig::builder()
        .mem_mib(mem_mib)
        .runtimes(vec![RuntimeKind::NodeJs, RuntimeKind::Python])
        .build()
        .expect("valid config");
    SeussNode::new(cfg).expect("node").0
}

fn completed(inv: Invocation) -> (String, f64) {
    match inv {
        Invocation::Completed { result, costs, .. } => (result, costs.total().as_millis_f64()),
        other => panic!("expected completion, got {other:?}"),
    }
}

#[test]
fn one_base_snapshot_per_interpreter() {
    let node = dual_node(2048);
    assert_eq!(
        node.runtimes(),
        vec![RuntimeKind::NodeJs, RuntimeKind::Python]
    );
    let js = node.runtime_image_for(RuntimeKind::NodeJs).expect("js");
    let py = node.runtime_image_for(RuntimeKind::Python).expect("py");
    assert_ne!(js, py);
    // Distinct images resolve to distinctly-sized resident sets (the
    // CPython stack is smaller than the Node.js one).
    let js_mib = node
        .snaps
        .resident_mib(&node.mmu, node.images.snapshot_of(js).expect("snap"))
        .expect("size");
    let py_mib = node
        .snaps
        .resident_mib(&node.mmu, node.images.snapshot_of(py).expect("snap"))
        .expect("size");
    assert!(js_mib > py_mib + 20.0, "js {js_mib} vs py {py_mib}");
}

#[test]
fn functions_run_on_their_bound_runtime() {
    let mut node = dual_node(2048);
    let src = "function main(args) { return 'hi from ' + args.lang; }";
    let (r1, _) = completed(
        node.invoke_on(1, RuntimeKind::NodeJs, src, &[("lang", "js")])
            .expect("js"),
    );
    let (r2, _) = completed(
        node.invoke_on(2, RuntimeKind::Python, src, &[("lang", "py")])
            .expect("py"),
    );
    assert_eq!(r1, "hi from js");
    assert_eq!(r2, "hi from py");
    assert_eq!(node.stats.cold, 2);
    // Both get function snapshots and hot caches, independently.
    let (_, hot_js) = completed(
        node.invoke_on(1, RuntimeKind::NodeJs, src, &[])
            .expect("hot"),
    );
    let (_, hot_py) = completed(
        node.invoke_on(2, RuntimeKind::Python, src, &[])
            .expect("hot"),
    );
    assert!(hot_js < 1.5);
    assert!(hot_py < 1.5);
}

#[test]
fn python_cold_start_differs_from_nodejs() {
    let mut node = dual_node(2048);
    let src = "function main(args) { return 0; }";
    let (_, js_cold) = completed(
        node.invoke_on(10, RuntimeKind::NodeJs, src, &[])
            .expect("js"),
    );
    let (_, py_cold) = completed(
        node.invoke_on(11, RuntimeKind::Python, src, &[])
            .expect("py"),
    );
    // CPython compiles slower per byte but has smaller fixed caches; both
    // stay in single-digit milliseconds post-AO.
    assert!(js_cold < 10.0, "{js_cold}");
    assert!(py_cold < 10.0, "{py_cold}");
    assert!((js_cold - py_cold).abs() > 0.05, "profiles are distinct");
}

#[test]
fn unconfigured_runtime_is_an_error() {
    let cfg = SeussConfig::builder()
        .mem_mib(2048) // NodeJs only
        .build()
        .expect("valid config");
    let (mut node, _) = SeussNode::new(cfg).expect("node");
    assert!(node
        .invoke_on(
            1,
            RuntimeKind::Python,
            "function main(a) { return 0; }",
            &[]
        )
        .is_err());
}

#[test]
fn mixed_runtime_platform_trial() {
    let mut reg = Registry::new();
    reg.register_many(0, 3, FnKind::Nop); // Node.js
    for id in 3..6u64 {
        reg.register_on(id, FnKind::Nop, RuntimeKind::Python);
    }
    let order: Vec<u64> = (0..48).map(|i| i % 6).collect();
    let spec = WorkloadSpec::closed_loop(order, 4);
    let node_cfg = SeussConfig::builder()
        .mem_mib(2048)
        .runtimes(vec![RuntimeKind::NodeJs, RuntimeKind::Python])
        .build()
        .expect("valid config");
    let cfg = ClusterConfig {
        backend: BackendKind::Seuss(Box::new(node_cfg)),
        ..ClusterConfig::seuss_paper()
    };
    let out = run_trial(cfg, reg, &spec);
    assert_eq!(out.analysis.completed, 48);
    assert_eq!(out.analysis.errors, 0);
    assert_eq!(out.analysis.paths.0, 6, "six cold starts, one per function");
}
