//! Cross-crate tiering tests: the storage tier end to end through the
//! node, the cluster, and the sharded executor.
//!
//! - a demoted snapshot round-trips byte-exact through a real deploy
//!   under every restore policy;
//! - working-set prefetch is strictly cheaper than lazy paging and
//!   never dearer than the eager full restore on the recorded set;
//! - a fault-free tiered run whose device never has to absorb pressure
//!   is byte-identical to the untiered in-memory path;
//! - a pressured, demoting, sharded trial is byte-identical at 1, 2,
//!   and 4 worker threads.

use seuss::core::{Invocation, PathKind, SeussConfig, SeussNode};
use seuss::exec::{run_sharded, BackendSpec, ExecConfig, ShardPlan};
use seuss::platform::{run_trial, BackendKind, ClusterConfig, FnKind};
use seuss::store::{DeviceConfig, ReclaimMode, RestorePolicy, StoreConfig};
use seuss::workload::{sharded_artifacts, TrialParams};
use simcore::SimDuration;

/// A function whose result depends on a multi-page data literal, so a
/// restore that lost or corrupted a page changes the answer.
fn checksum_src() -> String {
    let cells: Vec<String> = (0..256u64)
        .map(|i| (i * 2654435761 % 997).to_string())
        .collect();
    format!(
        "let table = [{}];\n\
         function main(args) {{ let acc = 0; \
         for (let i = 0; i < 256; i = i + 1) {{ acc = acc + table[i] * (i + 1); }} \
         return acc; }}",
        cells.join(",")
    )
}

fn store_cfg(policy: RestorePolicy) -> StoreConfig {
    StoreConfig {
        device: DeviceConfig::nvme(),
        policy,
        reclaim: ReclaimMode::DemoteColdest,
    }
}

fn tiered_node(policy: RestorePolicy) -> SeussNode {
    let cfg = SeussConfig::test_builder()
        .store(Some(store_cfg(policy)))
        .build()
        .expect("valid tiered config");
    SeussNode::new(cfg).expect("node init").0
}

fn completed(inv: Invocation) -> (PathKind, String, SimDuration) {
    match inv {
        Invocation::Completed {
            path,
            result,
            costs,
            ..
        } => (path, result, costs.restore),
        Invocation::Blocked { .. } => panic!("workload never blocks"),
    }
}

/// Invokes once and drains the idle UC so the next invocation redeploys
/// from the snapshot cache instead of reusing the hot UC.
fn invoke_fresh(node: &mut SeussNode, f: u64, src: &str) -> (PathKind, String, SimDuration) {
    let out = completed(node.invoke(f, src, &[]).expect("invoke"));
    while let Some(uc) = node.idle.take(f) {
        node.destroy_uc(uc);
    }
    out
}

/// Demotes function `f`'s snapshot to the device by hand (no pressure
/// staging), returning its id.
fn demote_fn(node: &mut SeussNode, f: u64) -> seuss::snapshot::SnapshotId {
    let img = node.fn_cache.peek(f).expect("cached image");
    let sid = node.images.snapshot_of(img).expect("fn snapshot");
    let tier = node.tier.as_mut().expect("tiered node");
    let out = tier
        .demote(&mut node.mmu, &mut node.mem, &node.snaps, sid)
        .expect("demote");
    assert!(out.pages > 0, "diff must have pages to move");
    sid
}

#[test]
fn demoted_snapshots_round_trip_byte_exact_under_every_policy() {
    let src = checksum_src();
    for policy in [
        RestorePolicy::LazyPaging,
        RestorePolicy::EagerFull,
        RestorePolicy::WorkingSetPrefetch,
    ] {
        let mut node = tiered_node(policy);
        let (p0, expected, _) = invoke_fresh(&mut node, 7, &src);
        assert_eq!(p0, PathKind::Cold);
        let (p1, warm, _) = invoke_fresh(&mut node, 7, &src);
        assert_eq!(p1, PathKind::Warm, "{policy:?}: resident redeploy");
        assert_eq!(warm, expected);

        let sid = demote_fn(&mut node, 7);
        for round in 0..3 {
            let (path, result, _) = invoke_fresh(&mut node, 7, &src);
            assert_eq!(
                result, expected,
                "{policy:?}: round {round} result diverged after demotion"
            );
            // Eager promotes on its first tiered deploy, so later rounds
            // are plain warm; lazy and ws keep the snapshot demoted.
            let expect_tier = match policy {
                RestorePolicy::EagerFull => round == 0,
                _ => true,
            };
            assert_eq!(
                path,
                if expect_tier {
                    PathKind::WarmTier
                } else {
                    PathKind::Warm
                },
                "{policy:?}: round {round}"
            );
        }
        assert!(
            node.snaps.verify(sid).expect("snapshot alive"),
            "{policy:?}: checksum broken by tiering"
        );
    }
}

#[test]
fn prefetch_beats_lazy_and_never_exceeds_eager_on_the_recorded_set() {
    let src = checksum_src();
    let mut restore1 = std::collections::HashMap::new();
    let mut restore2 = std::collections::HashMap::new();
    for policy in [
        RestorePolicy::LazyPaging,
        RestorePolicy::EagerFull,
        RestorePolicy::WorkingSetPrefetch,
    ] {
        let mut node = tiered_node(policy);
        invoke_fresh(&mut node, 3, &src);
        demote_fn(&mut node, 3);
        let (p1, _, r1) = invoke_fresh(&mut node, 3, &src);
        assert_eq!(p1, PathKind::WarmTier);
        let (_, _, r2) = invoke_fresh(&mut node, 3, &src);
        restore1.insert(policy.as_str(), r1);
        restore2.insert(policy.as_str(), r2);
        if policy == RestorePolicy::WorkingSetPrefetch {
            assert_eq!(
                node.tier.as_ref().unwrap().stats().prefetches,
                1,
                "second tiered deploy must batch-prefetch"
            );
        }
    }
    let ws2 = restore2["ws"];
    assert!(ws2 > SimDuration::ZERO, "prefetch restore must be measured");
    assert!(
        ws2 < restore2["lazy"],
        "prefetch {ws2:?} not under lazy {:?}",
        restore2["lazy"]
    );
    assert!(
        ws2 <= restore1["eager"],
        "prefetch {ws2:?} dearer than eager's full restore {:?}",
        restore1["eager"]
    );
    // Lazy pays per-page latency on every single redeploy; the recording
    // pass is lazy too, so the ws side's first tiered deploy matches it.
    assert!(restore1["lazy"] > SimDuration::ZERO);
    assert_eq!(restore1["ws"], restore1["lazy"]);
    // Eager's restore happens once: the second deploy is resident.
    assert_eq!(restore2["eager"], SimDuration::ZERO);
}

#[test]
fn unpressured_tiered_trial_is_byte_identical_to_the_in_memory_path() {
    // 2 GiB node, tiny workload: the reclaim threshold is never crossed,
    // so the tier — though configured — never acts. The entire record
    // stream must match the untiered run bit for bit.
    let run = |store: Option<StoreConfig>| {
        let node = SeussConfig::builder()
            .mem_mib(2048)
            .store(store)
            .build()
            .expect("valid config");
        let cfg = ClusterConfig {
            backend: BackendKind::Seuss(Box::new(node)),
            ..ClusterConfig::seuss_paper()
        };
        let (reg, spec) = TrialParams {
            invocations: 192,
            set_size: 24,
            workers: 8,
            kind: FnKind::Nop,
            seed: 1234,
        }
        .build();
        let out = run_trial(cfg, reg, &spec);
        (
            seuss::workload::records_csv(&out.records),
            seuss::platform::records_jsonl(&out.records),
            out.finished_at,
            out.events,
        )
    };
    let untiered = run(None);
    let tiered = run(Some(StoreConfig::nvme_prefetch()));
    assert_eq!(untiered, tiered, "an idle tier changed the trial's bytes");
}

#[test]
fn pressured_sharded_trial_is_byte_identical_at_1_2_and_4_workers() {
    // Small shard nodes with an aggressive reclaim threshold: every
    // shard's OOM daemon demotes through its own store view during the
    // trial. Shard count is fixed (it determines the bytes); the worker
    // count must not matter.
    let node = SeussConfig::test_builder()
        .mem_mib(48)
        .reclaim_threshold_frames(Some(1200))
        .store(Some(StoreConfig::nvme_prefetch()))
        .build()
        .expect("valid pressured config");
    let cfg = ExecConfig {
        backend: BackendSpec::Seuss(Box::new(node)),
        traced: true,
        ..ExecConfig::seuss_paper()
    };
    let (reg, spec) = TrialParams {
        invocations: 160,
        set_size: 32,
        workers: 8,
        kind: FnKind::Nop,
        seed: 77,
    }
    .build();

    let base = sharded_artifacts(&run_sharded(&cfg, &reg, &spec, ShardPlan::new(4, 1)));
    let metrics = base.metrics_json.as_deref().expect("traced run");
    assert!(
        metrics.contains("tier:demote"),
        "pressure never reached the tier; the test is vacuous"
    );
    for workers in [2, 4] {
        let got = sharded_artifacts(&run_sharded(&cfg, &reg, &spec, ShardPlan::new(4, workers)));
        assert_eq!(
            base.records_csv, got.records_csv,
            "records diverged at workers={workers}"
        );
        assert_eq!(
            base.records_jsonl, got.records_jsonl,
            "jsonl diverged at workers={workers}"
        );
        assert_eq!(
            base.trace_jsonl, got.trace_jsonl,
            "trace diverged at workers={workers}"
        );
        assert_eq!(
            base.metrics_json, got.metrics_json,
            "metrics diverged at workers={workers}"
        );
    }
}
