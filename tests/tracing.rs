//! Cross-crate tracing integration: a platform trial run with an
//! enabled tracer must produce a well-formed trace whose per-phase
//! spans exactly account for every top-level segment, plus a coherent
//! metrics report — all through the `seuss` facade, the way the bench
//! binaries consume it.

use seuss::core::SeussConfig;
use seuss::platform::{run_trial, BackendKind, ClusterConfig, FnKind, Registry, WorkloadSpec};
use seuss::sim::SimDuration;
use seuss::trace::{validate_jsonl, SpanName, Tracer};
use seuss::workload::trial_artifacts;

fn traced_trial() -> seuss::platform::TrialOutput {
    let node = SeussConfig::builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    let mut reg = Registry::new();
    reg.register_many(0, 3, FnKind::Nop);
    reg.register_many(3, 1, FnKind::Io);
    reg.register_many(4, 1, FnKind::Cpu(SimDuration::from_millis(5)));
    let order: Vec<u64> = (0..40).map(|i| i % 5).collect();
    let spec = WorkloadSpec::closed_loop(order, 4);
    let cfg = ClusterConfig {
        backend: BackendKind::Seuss(Box::new(node)),
        tracer: Tracer::enabled(),
        ..ClusterConfig::seuss_paper()
    };
    run_trial(cfg, reg, &spec)
}

#[test]
fn traced_trial_produces_validated_jsonl() {
    let out = traced_trial();
    assert_eq!(out.analysis.completed, 40);
    assert!(out.tracer.is_enabled());

    let doc = out.tracer.export_jsonl();
    let v = validate_jsonl(&doc).expect("trial trace must validate");
    assert!(v.enters > 0, "trial must record spans");
    assert_eq!(v.enters, v.exits, "every span must close");
    assert!(v.events > 0, "trial must record events");
    assert_eq!(out.tracer.open_spans(), 0);
}

#[test]
fn every_segment_is_exactly_covered_by_its_phase_spans() {
    let out = traced_trial();
    let spans = out.tracer.spans();
    let mut segments = 0;
    for root in spans.iter().filter(|s| s.parent.is_none()) {
        if !matches!(root.name, SpanName::Invoke | SpanName::Resume) {
            continue;
        }
        segments += 1;
        let child_sum = spans
            .iter()
            .filter(|s| s.parent == Some(root.id))
            .filter(|s| matches!(s.name, SpanName::Phase(_)))
            .fold(SimDuration::ZERO, |acc, s| {
                acc + s.duration().expect("closed")
            });
        assert_eq!(
            child_sum,
            root.duration().expect("closed"),
            "phase spans must sum exactly to their {:?} span",
            root.name
        );
    }
    assert!(segments >= 40, "every request produces a top-level segment");
}

#[test]
fn trial_metrics_cover_all_three_paths() {
    let out = traced_trial();
    let report = out.tracer.metrics_report();
    assert!(report.segments >= 40);
    // A closed-loop trial over 5 functions serves cold, then warm/hot.
    let by_path: Vec<&str> = report
        .per_path
        .iter()
        .filter(|(_, q)| q.count > 0)
        .map(|(p, _)| p.as_str())
        .collect();
    assert!(by_path.contains(&"cold"), "{by_path:?}");
    assert!(by_path.contains(&"hot"), "{by_path:?}");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    // The artifact bundle carries all of it.
    let a = trial_artifacts(&out);
    assert!(a.trace_jsonl.is_some() && a.metrics_json.is_some());
}
