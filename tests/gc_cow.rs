//! The COW × moving-GC interaction (the paper's closing §7 observation
//! and stated future work): after a snapshot, a garbage collector that
//! relocates objects turns cheap in-place writes into COW breaks and
//! bloats the next snapshot's diff.

use seuss::core::{Invocation, SeussConfig, SeussNode};

const CHURN: &str = r#"
    // Module state built at import time: live objects the GC will move.
    let cache = [];
    let seed = 0;
    while (seed < 400) {
        push(cache, { k: seed, v: str(seed * seed) });
        seed += 1;
    }
    function main(args) {
        push(cache, { k: len(cache), v: 'run' });
        return len(cache);
    }
"#;

#[test]
fn gc_after_snapshot_forces_cow_breaks() {
    let cfg = SeussConfig::builder()
        .mem_mib(2048)
        .build()
        .expect("valid config");
    let (mut node, _) = SeussNode::new(cfg).expect("node");

    // Build the function snapshot and one idle UC.
    match node.invoke(1, CHURN, &[]).expect("cold") {
        Invocation::Completed { .. } => {}
        other => panic!("{other:?}"),
    }
    let mut uc = node.idle.take(1).expect("idle UC");

    // Quiesce: measure pure-GC page traffic on the idle UC.
    let cow_before = node.mmu.stats.cow_clones;
    let dz_before = node.mmu.stats.demand_zero_allocs;
    uc.run_gc(&mut node.mmu, &mut node.mem).expect("gc");
    let cow = node.mmu.stats.cow_clones - cow_before;
    let dz = node.mmu.stats.demand_zero_allocs - dz_before;
    assert!(
        cow + dz > 0,
        "a moving GC must dirty pages (cow {cow}, demand-zero {dz})"
    );
    node.destroy_uc(uc);
}

#[test]
fn gc_before_capture_bloats_the_snapshot_diff() {
    // Two nodes, same function; one runs a GC between compile and
    // capture. Its function snapshot must carry more pages.
    let diff_pages = |gc: bool| -> u64 {
        let cfg = SeussConfig::builder()
            .mem_mib(2048)
            .build()
            .expect("valid config");
        let (mut node, _) = SeussNode::new(cfg).expect("node");
        // Reach inside the cold path manually to control capture timing.
        let base = node.runtime_image().expect("base");
        let (mut uc, _) = node
            .images
            .deploy(&mut node.mmu, &mut node.mem, &mut node.snaps, base)
            .expect("deploy");
        uc.connect(&mut node.mmu, &mut node.mem).expect("connect");
        uc.import_function(&mut node.mmu, &mut node.mem, CHURN)
            .expect("import");
        if gc {
            uc.run_gc(&mut node.mmu, &mut node.mem).expect("gc");
        }
        let (img, _) = node
            .images
            .capture(
                &mut node.mmu,
                &mut node.mem,
                &mut node.snaps,
                &mut uc,
                seuss::snapshot::SnapshotKind::Function,
                "f",
                Some(base),
            )
            .expect("capture");
        let snap = node.images.snapshot_of(img).expect("snap");
        let pages = node.snaps.get(snap).expect("live").diff_pages();
        node.images
            .destroy_uc(&mut node.mmu, &mut node.mem, &mut node.snaps, uc);
        pages
    };
    let without = diff_pages(false);
    let with = diff_pages(true);
    assert!(
        with > without,
        "GC relocation must enlarge the diff ({with} vs {without} pages)"
    );
}
