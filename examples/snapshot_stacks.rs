//! Snapshot stacks: the §3 Foo/Bar example, mechanically.
//!
//! "If the interpreter is 100 MB and each function adds 1 MB, we require
//! 202 MB of storage. With snapshot stacks, three snapshots are used …
//! This requires 102 MB as the interpreter is shared between the two
//! function snapshots."
//!
//! This example builds exactly that: one base runtime snapshot and two
//! function snapshots (`foo`, `bar`) diffing against it, then deploys a
//! crowd of UCs from each and prints where the memory actually went.
//!
//! ```sh
//! cargo run --release --example snapshot_stacks
//! ```

use seuss::core::{Invocation, SeussConfig, SeussNode};

fn mib(pages: u64) -> f64 {
    (pages * 4096) as f64 / (1024.0 * 1024.0)
}

fn main() {
    let cfg = SeussConfig::builder()
        .mem_mib(8 * 1024)
        .build()
        .expect("valid node config");
    let (mut node, _) = SeussNode::new(cfg).expect("node init");

    let foo_src = "function main(args) { return 'foo says ' + (6 * 7); }";
    let bar_src = "function main(args) { let s = 0; for (let i = 0; i < 100; i = i + 1) { s = s + i; } return 'bar sum ' + s; }";

    let before = node.mem.stats();
    node.invoke(100, foo_src, &[]).expect("foo cold");
    node.invoke(200, bar_src, &[]).expect("bar cold");

    // Inspect the snapshot stack.
    let base_img = node.runtime_image().expect("runtime image");
    let base = node.images.snapshot_of(base_img).expect("base snapshot");
    println!("snapshot stack contents:");
    println!(
        "  base runtime snapshot : {:>8.1} MiB resident ({:.1} MiB diff over boot)",
        node.snaps.resident_mib(&node.mmu, base).expect("size"),
        node.snaps.get(base).expect("live").diff_mib(),
    );
    for (f, name) in [(100u64, "foo"), (200, "bar")] {
        let img = node.fn_cache.lookup(f).expect("cached");
        let snap = node.images.snapshot_of(img).expect("snapshot");
        let s = node.snaps.get(snap).expect("live");
        println!(
            "  {name} function snapshot : {:>8.1} MiB diff on parent (stack: {:?})",
            s.diff_mib(),
            node.snaps.stack_of(snap).expect("lineage").len(),
        );
    }
    let after = node.mem.stats();
    println!(
        "\ntotal node memory for base + foo + bar: {:.1} MiB (not {:.1} MiB — the runtime image is stored once)",
        mib(after.used_frames - before.used_frames) + mib(before.used_frames),
        2.0 * node.snaps.resident_mib(&node.mmu, base).expect("size"),
    );

    // Deploy a crowd from each function snapshot: COW sharing means each
    // warm UC pins only its private pages.
    let crowd = 64;
    let before_crowd = node.mem.stats().used_frames;
    for i in 0..crowd {
        let f = if i % 2 == 0 { 100 } else { 200 };
        match node.invoke(f, "", &[]).expect("warm/hot") {
            Invocation::Completed { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    let growth = node.mem.stats().used_frames - before_crowd;
    println!(
        "\nafter {crowd} more invocations: +{:.1} MiB total, {} idle UCs cached —\nrepeat hot invocations reuse idle UCs and copy almost nothing.",
        mib(growth),
        node.idle.len(),
    );
}
