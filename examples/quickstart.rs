//! Quickstart: boot a SEUSS compute node, register a function, and watch
//! the three invocation paths (cold → hot → warm) get faster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seuss::core::{Invocation, SeussConfig, SeussNode};

fn show(label: &str, inv: Invocation) {
    match inv {
        Invocation::Completed {
            path,
            result,
            costs,
            private_pages,
        } => println!(
            "{label:<18} path={path:?}  latency={:.2} ms  result={result:?}  pages copied={private_pages}",
            costs.total().as_millis_f64()
        ),
        other => println!("{label:<18} unexpected outcome: {other:?}"),
    }
}

fn main() {
    // A paper-scale node, shrunk to 4 GiB so the example starts fast.
    let cfg = SeussConfig::builder()
        .mem_mib(4096)
        .build()
        .expect("valid node config");
    println!(
        "booting SEUSS node ({} cores, {} MiB, AO: {:?})…",
        cfg.cores, cfg.mem_mib, cfg.ao
    );
    let (mut node, init) = SeussNode::new(cfg).expect("node init");
    println!(
        "node ready in {:.0} ms of virtual time (boot + AO + base snapshot)\n",
        init.as_millis_f64()
    );

    let src = r#"
        function fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        function main(args) { return 'fib(20) = ' + fib(20); }
    "#;

    // First invocation: cold — deploy from the runtime snapshot, import
    // and compile the source, capture a function snapshot, run.
    show("cold (1st call)", node.invoke(1, src, &[]).expect("cold"));

    // Second invocation: hot — the idle UC from the first call is reused.
    show("hot  (2nd call)", node.invoke(1, src, &[]).expect("hot"));

    // Drop the idle UC to force the warm path: deploy from the captured
    // function snapshot (no import, no compile).
    while let Some(uc) = node.idle.take(1) {
        node.images
            .destroy_uc(&mut node.mmu, &mut node.mem, &mut node.snaps, uc);
    }
    show("warm (no idle UC)", node.invoke(1, src, &[]).expect("warm"));

    let base = node.runtime_image().expect("runtime image");
    let snap = node.images.snapshot_of(base).expect("snapshot");
    println!(
        "\nbase runtime snapshot: {:.1} MiB resident, shared by every UC on the node",
        node.snaps.resident_mib(&node.mmu, snap).expect("size")
    );
    println!(
        "node stats: {} cold / {} warm / {} hot, {:.1} MiB in use",
        node.stats.cold,
        node.stats.warm,
        node.stats.hot,
        node.used_mib()
    );
}
