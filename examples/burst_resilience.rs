//! Burst resiliency (the Figure 6–8 scenario, scaled down): a steady
//! background of IO-bound functions plus sudden bursts of a CPU-bound
//! function the platform has never seen, on both backends.
//!
//! ```sh
//! cargo run --release --example burst_resilience [period_seconds]
//! ```

use seuss::core::SeussConfig;
use seuss::platform::{BackendKind, ClusterConfig, RequestStatus};
use seuss::workload::BurstParams;

fn main() {
    let period: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mut params = BurstParams::paper(period);
    params.bursts = 6;
    println!(
        "{} bursts of {} CPU-bound requests every {period}s over a {} rps IO-bound background\n",
        params.bursts, params.burst_size, params.background_rps
    );

    for backend in ["Linux", "SEUSS"] {
        let (registry, spec) = params.build();
        let cfg = if backend == "Linux" {
            ClusterConfig {
                backend: BackendKind::Linux {
                    cache_limit: 1024,
                    stemcell_target: 256,
                },
                ..ClusterConfig::seuss_paper()
            }
        } else {
            let node = SeussConfig::builder()
                .mem_mib(6 * 1024)
                .build()
                .expect("valid node config");
            ClusterConfig {
                backend: BackendKind::Seuss(Box::new(node)),
                ..ClusterConfig::seuss_paper()
            }
        };
        let out = seuss::platform::run_trial(cfg, registry, &spec);
        let errors = out
            .records
            .iter()
            .filter(|r| r.status == RequestStatus::Error)
            .count();
        let burst_worst = out
            .records
            .iter()
            .filter(|r| r.burst && r.status == RequestStatus::Ok)
            .map(|r| r.latency_ms)
            .fold(0.0f64, f64::max);
        println!(
            "{backend:<6} node: {} requests, {errors} errors, worst successful burst latency {:.0} ms",
            out.records.len(),
            burst_worst
        );
        // A one-line-per-burst view of how each burst fared.
        for b in 0..params.bursts {
            let fn_id = 1_000 + b as u64;
            let (ok, err): (
                Vec<&seuss::platform::RequestRecord>,
                Vec<&seuss::platform::RequestRecord>,
            ) = out
                .records
                .iter()
                .filter(|r| r.fn_id == fn_id)
                .partition(|r| r.status == RequestStatus::Ok);
            let p99 = {
                let mut v: Vec<f64> = ok.iter().map(|r| r.latency_ms).collect();
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                v.get(v.len().saturating_sub(2))
                    .copied()
                    .unwrap_or(f64::NAN)
            };
            println!(
                "   burst {:>2}: {:>3} ok, {:>3} errors, p99 {:>9.0} ms",
                b + 1,
                ok.len(),
                err.len(),
                p99
            );
        }
        println!();
    }
    println!("shape: SEUSS absorbs every burst (each one adds a single new snapshot);\nLinux degrades once its container cache saturates.");
}
