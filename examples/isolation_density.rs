//! How many Node.js execution environments fit on one compute node?
//! (The Table 3 density experiment as a runnable walkthrough.)
//!
//! ```sh
//! cargo run --release --example isolation_density [mem_mib]
//! ```

use seuss::baseline::{DockerEngine, FirecrackerEngine, ProcessEngine};
use seuss::core::{NodeError, SeussConfig, SeussNode};

fn main() {
    let mem_mib: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8 * 1024);
    println!("node memory: {mem_mib} MiB\n");

    let fc = FirecrackerEngine::paper();
    let dk = DockerEngine::paper(1);
    let pr = ProcessEngine::paper();
    println!(
        "Firecracker microVM : {:>7} instances ({:.0} MiB each — guest kernel + container + runtime)",
        fc.density_limit(mem_mib),
        fc.footprint_mib
    );
    println!(
        "Docker container    : {:>7} instances ({:.1} MiB each)",
        dk.density_limit(mem_mib),
        dk.footprint_mib
    );
    println!(
        "Linux process       : {:>7} instances ({:.1} MiB each)",
        pr.density_limit(mem_mib),
        pr.footprint_mib
    );

    // SEUSS: actually deploy UCs until the node is full — the density is
    // not a modeled constant, it emerges from page-table + COW accounting.
    let cfg = SeussConfig::builder()
        .mem_mib(mem_mib)
        .idle_per_fn(usize::MAX >> 1)
        .idle_total(usize::MAX >> 1)
        .build()
        .expect("valid density config");
    let (mut node, _) = SeussNode::new(cfg).expect("node init");
    let baseline_mib = node.used_mib();
    let mut deployed = 0u64;
    loop {
        match node.deploy_idle_uc(deployed) {
            Ok(_) => deployed += 1,
            Err(NodeError::OutOfMemory) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let per_uc_mib = (node.used_mib() - baseline_mib) / deployed as f64;
    println!(
        "SEUSS UC            : {deployed:>7} instances ({per_uc_mib:.2} MiB marginal each, measured)",
    );
    println!(
        "\nthe shared base snapshot ({:.1} MiB) is stored once; every UC is a\nshallow page-table clone plus the pages its driver dirties resuming.",
        baseline_mib
    );
    println!("paper (88 GiB node): 450 microVMs / 3000 containers / 4200 processes / 54000 UCs");
}
