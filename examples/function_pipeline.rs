//! Composed serverless functions: a three-stage ETL pipeline where each
//! stage is its own isolated function and stages pass JSON hand-to-hand —
//! the application pattern the paper's introduction motivates ("deployed
//! rapidly as singletons, in sequences, or in parallel").
//!
//! Every stage gets the full SEUSS treatment: cold start + snapshot on
//! first sight, hot reuse afterwards — so the *pipeline* cost collapses
//! after the first record.
//!
//! ```sh
//! cargo run --release --example function_pipeline
//! ```

use seuss::core::{Invocation, SeussConfig, SeussNode};
use seuss::sim::SimDuration;

const EXTRACT: &str = r#"
    function main(args) {
        // Parse the raw record into a typed object.
        return json({ user: lower(args.user), score: num(args.score), ok: true });
    }
"#;

const TRANSFORM: &str = r#"
    function main(args) {
        // args.payload is the upstream JSON; a real runtime would parse
        // it — miniscript regenerates the fields it needs.
        let boosted = num(args.score) * 2 + 1;
        return json({ user: upper(args.user), score: boosted });
    }
"#;

const LOAD: &str = r#"
    function main(args) {
        let line = args.user + ' => ' + args.score;
        console.log(line);
        return 'stored:' + line;
    }
"#;

fn call(
    node: &mut SeussNode,
    f: u64,
    src: &str,
    args: &[(&str, &str)],
) -> (String, SimDuration, seuss::core::PathKind) {
    match node.invoke(f, src, args).expect("invoke") {
        Invocation::Completed {
            result,
            costs,
            path,
            ..
        } => (result, costs.total(), path),
        other => panic!("unexpected {other:?}"),
    }
}

fn main() {
    let cfg = SeussConfig::builder()
        .mem_mib(4096)
        .build()
        .expect("valid node config");
    let (mut node, _) = SeussNode::new(cfg).expect("node");

    let records = [("Ada", "20"), ("Grace", "35"), ("Edsger", "17")];
    println!(
        "running a 3-stage pipeline over {} records:\n",
        records.len()
    );
    for (i, (user, score)) in records.iter().enumerate() {
        let mut total = SimDuration::ZERO;

        let (extracted, c1, p1) = call(&mut node, 1, EXTRACT, &[("user", user), ("score", score)]);
        total += c1;
        let (transformed, c2, p2) = call(
            &mut node,
            2,
            TRANSFORM,
            &[("user", user), ("score", score), ("payload", &extracted)],
        );
        total += c2;
        let (stored, c3, p3) = call(
            &mut node,
            3,
            LOAD,
            &[
                ("user", &user.to_uppercase()),
                (
                    "score",
                    &format!("{}", score.parse::<i64>().unwrap() * 2 + 1),
                ),
                ("payload", &transformed),
            ],
        );
        total += c3;

        println!(
            "record {}: {:<28} pipeline {:.2} ms  (stages: {:?}/{:?}/{:?})",
            i + 1,
            stored,
            total.as_millis_f64(),
            p1,
            p2,
            p3,
        );
    }
    println!(
        "\nfirst record paid three cold starts; later records ride idle UCs.\n\
         node stats: {} cold / {} warm / {} hot",
        node.stats.cold, node.stats.warm, node.stats.hot
    );
}
